#include <gtest/gtest.h>

#include <cctype>
#include <cmath>

#include "fs/exhaustive.h"
#include "fs/nsga2.h"
#include "fs/registry.h"
#include "fs/rfe.h"
#include "fs/sequential.h"
#include "fs/simulated_annealing.h"
#include "fs/tpe_mask.h"
#include "testing/test_util.h"

namespace dfs::fs {
namespace {

using ::dfs::testing::BitMismatchObjective;
using ::dfs::testing::FakeEvalContext;

// ---------------------------------------------------------------------
// Generic property: every strategy must find the (easy) 1-bit target in a
// small search space and stop once the context reports success.

class AnyStrategyTest : public ::testing::TestWithParam<StrategyId> {};

TEST_P(AnyStrategyTest, SolvesSizeThreeTarget) {
  // Success at any 3-feature subset of 6 (objective = |size - 3|): reachable
  // by every search style — top-k rankings (k = 3), sequential growth or
  // shrinkage, exhaustive size sweeps, and mask search.
  auto objective = [](const FeatureMask& mask) {
    return std::abs(CountSelected(mask) - 3.0);
  };
  FakeEvalContext context(6, objective, /*eval_budget=*/5000);
  context.set_importances({0.5, 0.4, 0.9, 0.3, 0.2, 0.1});
  context.set_train_data(testing::MakeLinearDataset(120, 4, 200));
  auto strategy = CreateStrategy(GetParam(), /*seed=*/11);
  strategy->Run(context);
  // The baseline (original feature set) legitimately cannot solve this.
  if (GetParam() == StrategyId::kOriginalFeatureSet) {
    EXPECT_FALSE(context.success());
    EXPECT_EQ(context.evaluations(), 1);
  } else {
    EXPECT_TRUE(context.success())
        << strategy->name() << " evals=" << context.evaluations();
  }
}

TEST_P(AnyStrategyTest, StopsWhenBudgetExhausted) {
  // Unsatisfiable objective; the strategy must terminate anyway.
  FakeEvalContext context(8, [](const FeatureMask&) { return 1.0; },
                          /*eval_budget=*/40);
  context.set_importances({1, 2, 3, 4, 5, 6, 7, 8});
  context.set_train_data(testing::MakeLinearDataset(80, 6, 201));
  auto strategy = CreateStrategy(GetParam(), 13);
  strategy->Run(context);
  EXPECT_FALSE(context.success());
  EXPECT_LE(context.evaluations(), 40);
}

TEST_P(AnyStrategyTest, HasTaxonomyInfoAndName) {
  auto strategy = CreateStrategy(GetParam(), 1);
  ASSERT_NE(strategy, nullptr);
  EXPECT_EQ(strategy->name(), StrategyIdToString(GetParam()));
  const StrategyInfo info = strategy->info();
  if (GetParam() == StrategyId::kNsga2) {
    EXPECT_EQ(info.objectives, StrategyInfo::Objectives::kMulti);
  } else {
    EXPECT_EQ(info.objectives, StrategyInfo::Objectives::kSingle);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, AnyStrategyTest,
    ::testing::ValuesIn(AllStrategiesWithBaseline()),
    [](const auto& info) {
      std::string name = StrategyIdToString(info.param);
      std::string clean;
      for (char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c))) clean += c;
      }
      return clean;
    });

// ---------------------------------------------------------------------
// Strategy-specific behavior.

TEST(SequentialTest, ForwardFindsTwoFeatureTarget) {
  const FeatureMask target = IndicesToMask(10, {1, 7});
  FakeEvalContext context(10, BitMismatchObjective(target));
  SequentialSelection sfs(SequentialSelection::Direction::kForward, false);
  sfs.Run(context);
  EXPECT_TRUE(context.success());
  EXPECT_EQ(context.best_mask(), target);
  // Forward selection: ~10 + 9 evaluations, far below exhaustive.
  EXPECT_LE(context.evaluations(), 25);
}

TEST(SequentialTest, ForwardRespectsMaxFeatureCount) {
  FakeEvalContext context(8, [](const FeatureMask&) { return 1.0; }, 500);
  context.set_max_feature_count(3);
  SequentialSelection sfs(SequentialSelection::Direction::kForward, false);
  sfs.Run(context);
  EXPECT_LE(CountSelected(context.best_mask()), 3);
}

TEST(SequentialTest, BackwardStartsFromFullSet) {
  std::vector<int> sizes;
  FakeEvalContext context(5, [&sizes](const FeatureMask& mask) {
    sizes.push_back(CountSelected(mask));
    return 1.0;
  }, 6);
  SequentialSelection sbs(SequentialSelection::Direction::kBackward, false);
  sbs.Run(context);
  ASSERT_FALSE(sizes.empty());
  EXPECT_EQ(sizes.front(), 5);  // full mask first
}

TEST(SequentialTest, FloatingForwardCanUndoMistake) {
  // Objective rewards {0,1} together but greedy-first feature is 2:
  // single features: f2 best (0.5), others 0.8; pairs with 2 are bad (0.9),
  // pair {0,1} is the target (0.0). Plain SFS picks f2 then gets stuck at
  // {2,x}; SFFS reaches {0,1} via floating removal.
  auto objective = [](const FeatureMask& mask) {
    const auto selected = MaskToIndices(mask);
    if (selected == std::vector<int>{0, 1}) return 0.0;
    if (selected.size() == 1) return selected[0] == 2 ? 0.5 : 0.8;
    // Penalize any set containing feature 2 heavily, others mildly.
    for (int f : selected) {
      if (f == 2) return 0.9;
    }
    return 0.7 - 0.01 * selected.size();
  };
  FakeEvalContext floating_context(5, objective);
  SequentialSelection sffs(SequentialSelection::Direction::kForward, true);
  sffs.Run(floating_context);
  EXPECT_TRUE(floating_context.success());
}

TEST(ExhaustiveTest, EnumeratesSmallestSubsetsFirst) {
  std::vector<int> sizes;
  FakeEvalContext context(5, [&sizes](const FeatureMask& mask) {
    sizes.push_back(CountSelected(mask));
    return 1.0;
  }, 31);
  ExhaustiveSearch es;
  es.Run(context);
  // All 31 non-empty subsets, in non-decreasing size order.
  EXPECT_EQ(context.evaluations(), 31);
  for (size_t i = 1; i < sizes.size(); ++i) EXPECT_GE(sizes[i], sizes[i - 1]);
}

TEST(ExhaustiveTest, PrunesAboveMaxFeatureCount) {
  FakeEvalContext context(6, [](const FeatureMask&) { return 1.0; }, 1000);
  context.set_max_feature_count(2);
  ExhaustiveSearch es;
  es.Run(context);
  // C(6,1) + C(6,2) = 21 evaluations, nothing larger.
  EXPECT_EQ(context.evaluations(), 21);
}

TEST(RfeTest, DropsLeastImportantFeatureFirst)
{
  std::vector<FeatureMask> seen;
  FakeEvalContext context(4, [&seen](const FeatureMask& mask) {
    seen.push_back(mask);
    return 1.0;
  }, 100);
  context.set_importances({0.9, 0.1, 0.8, 0.5});  // feature 1 weakest
  RecursiveFeatureElimination rfe(/*drop_candidates=*/1);  // classic RFE
  rfe.Run(context);
  ASSERT_GE(seen.size(), 2u);
  EXPECT_EQ(seen[0], FullMask(4));
  EXPECT_EQ(seen[1], IndicesToMask(4, {0, 2, 3}));  // dropped feature 1
  // Runs down to a single feature: 4 evaluations total.
  EXPECT_EQ(seen.back(), IndicesToMask(4, {0}));
}

// Default RFE scores several drop candidates per step; the best objective
// wins even when it belongs to the *most* important feature, and ties
// still fall to the least important one (classic behavior).
TEST(RfeTest, DropCandidateScoringPrefersBetterObjective)
{
  std::vector<FeatureMask> seen;
  FakeEvalContext context(4, [&seen](const FeatureMask& mask) {
    seen.push_back(mask);
    return mask[0] ? 1.0 : 0.5;  // any subset without feature 0 scores best
  }, 100);
  context.set_importances({0.9, 0.1, 0.8, 0.5});
  RecursiveFeatureElimination rfe;  // default candidate width
  rfe.Run(context);
  // First step: 4 candidates in ascending-importance order (f1 f3 f2 f0);
  // the f0-drop wins on objective despite f0 being the most important.
  ASSERT_GE(seen.size(), 6u);
  EXPECT_EQ(seen[0], FullMask(4));
  EXPECT_EQ(seen[1], IndicesToMask(4, {0, 2, 3}));
  EXPECT_EQ(seen[4], IndicesToMask(4, {1, 2, 3}));
  // Second step starts from {1,2,3}: feature 0 is really gone, and the
  // all-tied round drops the least important feature (f1) first.
  EXPECT_EQ(seen[5], IndicesToMask(4, {2, 3}));
}

TEST(SimulatedAnnealingTest, FindsTargetInModerateSpace) {
  const FeatureMask target = IndicesToMask(10, {0, 3, 4});
  FakeEvalContext context(10, BitMismatchObjective(target), 4000);
  SimulatedAnnealingStrategy sa(/*seed=*/21);
  sa.Run(context);
  EXPECT_TRUE(context.success());
}

TEST(SimulatedAnnealingTest, RespectsMaxFeatureCount) {
  FakeEvalContext context(10, [](const FeatureMask&) { return 1.0; }, 300);
  context.set_max_feature_count(2);
  SimulatedAnnealingStrategy sa(22);
  sa.Run(context);
  EXPECT_LE(CountSelected(context.best_mask()), 2);
}

TEST(TpeMaskTest, FindsSatisfyingRegionInModerateSpace) {
  // Graded objective, as in real wrapper evaluation: success once both
  // required features are selected and at most two extras remain.
  auto objective = [](const FeatureMask& mask) {
    const double required = (mask[2] ? 0 : 1) + (mask[5] ? 0 : 1);
    const double extras = std::max(0, CountSelected(mask) - 4);
    return required + 0.2 * extras;
  };
  FakeEvalContext context(10, objective, 2000);
  TpeMaskStrategy tpe(23);
  tpe.Run(context);
  EXPECT_TRUE(context.success());
}

TEST(Nsga2Test, FindsTargetInModerateSpace) {
  const FeatureMask target = IndicesToMask(10, {1, 6, 8});
  // Multi-objective context still aggregates through the objective; the
  // constraint set has only min_f1 active so shortfalls are 1-dim + tie.
  FakeEvalContext context(10, BitMismatchObjective(target), 6000);
  Nsga2Strategy nsga2(24);
  nsga2.Run(context);
  EXPECT_TRUE(context.success());
}

TEST(Nsga2Test, FastNonDominatedSortRanksFronts) {
  // Points: a dominates b; c is incomparable to both on objective 2.
  std::vector<std::vector<double>> objectives = {
      {0.0, 0.0},  // front 0
      {1.0, 1.0},  // dominated by everything
      {0.5, 0.0},  // dominated by a only
  };
  const auto ranks = FastNonDominatedSort(objectives);
  EXPECT_EQ(ranks[0], 0);
  EXPECT_EQ(ranks[2], 1);
  EXPECT_EQ(ranks[1], 2);
}

TEST(Nsga2Test, NonDominatedPointsShareFrontZero) {
  std::vector<std::vector<double>> objectives = {
      {0.0, 1.0}, {1.0, 0.0}, {0.5, 0.5}};
  const auto ranks = FastNonDominatedSort(objectives);
  EXPECT_EQ(ranks, (std::vector<int>{0, 0, 0}));
}

TEST(Nsga2Test, CrowdingDistanceFavorsBoundary) {
  std::vector<std::vector<double>> objectives = {
      {0.0, 1.0}, {0.5, 0.5}, {1.0, 0.0}};
  const auto distance = CrowdingDistance(objectives, {0, 1, 2});
  EXPECT_TRUE(std::isinf(distance[0]));
  EXPECT_TRUE(std::isinf(distance[2]));
  EXPECT_FALSE(std::isinf(distance[1]));
  EXPECT_GT(distance[1], 0.0);
}

// ---------------------------------------------------------------------
// Registry.

TEST(RegistryTest, SixteenStrategiesPlusBaseline) {
  EXPECT_EQ(AllStrategies().size(), 16u);
  EXPECT_EQ(AllStrategiesWithBaseline().size(), 17u);
  EXPECT_EQ(AllStrategiesWithBaseline().front(),
            StrategyId::kOriginalFeatureSet);
}

TEST(RegistryTest, NamesRoundTrip) {
  for (StrategyId id : AllStrategiesWithBaseline()) {
    const std::string name = StrategyIdToString(id);
    EXPECT_NE(name, "?");
    auto parsed = StrategyIdFromString(name);
    ASSERT_TRUE(parsed.ok()) << name;
    EXPECT_EQ(*parsed, id);
  }
  EXPECT_FALSE(StrategyIdFromString("bogus").ok());
}

TEST(RegistryTest, Table3RowOrder) {
  const auto& ids = AllStrategies();
  EXPECT_EQ(StrategyIdToString(ids.front()), "SBS(NR)");
  EXPECT_EQ(StrategyIdToString(ids[6]), "TPE(NR)");
  EXPECT_EQ(StrategyIdToString(ids.back()), "TPE(FCBF)");
}

TEST(RegistryTest, TaxonomyCoversEveryLeaf) {
  // Figure 3: at least one strategy per leaf of the taxonomy.
  bool has_exhaustive = false, has_sequential_nr = false,
       has_sequential_ranked = false, has_randomized_nr = false,
       has_randomized_ranked = false, has_multi_objective = false;
  for (StrategyId id : AllStrategies()) {
    const StrategyInfo info = CreateStrategy(id, 1)->info();
    if (info.objectives == StrategyInfo::Objectives::kMulti) {
      has_multi_objective = true;
      continue;
    }
    switch (info.search) {
      case StrategyInfo::Search::kExhaustive:
        has_exhaustive = true;
        break;
      case StrategyInfo::Search::kSequential:
        (info.uses_ranking ? has_sequential_ranked : has_sequential_nr) =
            true;
        break;
      case StrategyInfo::Search::kRandomized:
        (info.uses_ranking ? has_randomized_ranked : has_randomized_nr) =
            true;
        break;
    }
  }
  EXPECT_TRUE(has_exhaustive);
  EXPECT_TRUE(has_sequential_nr);
  EXPECT_TRUE(has_sequential_ranked);
  EXPECT_TRUE(has_randomized_nr);
  EXPECT_TRUE(has_randomized_ranked);
  EXPECT_TRUE(has_multi_objective);
}

}  // namespace
}  // namespace dfs::fs
