#include "fs/feature_subset.h"

#include <gtest/gtest.h>

namespace dfs::fs {
namespace {

TEST(FeatureSubsetTest, MaskIndexRoundTrip) {
  const FeatureMask mask = IndicesToMask(5, {0, 2, 4});
  EXPECT_EQ(mask, (FeatureMask{1, 0, 1, 0, 1}));
  EXPECT_EQ(MaskToIndices(mask), (std::vector<int>{0, 2, 4}));
}

TEST(FeatureSubsetTest, FullMaskAndCount) {
  const FeatureMask mask = FullMask(4);
  EXPECT_EQ(CountSelected(mask), 4);
  EXPECT_EQ(CountSelected(FeatureMask{0, 0}), 0);
  EXPECT_EQ(CountSelected(FeatureMask{}), 0);
}

TEST(FeatureSubsetTest, HashDistinguishesMasks) {
  EXPECT_NE(MaskHash({1, 0, 1}), MaskHash({0, 1, 1}));
  EXPECT_NE(MaskHash({1, 0}), MaskHash({1, 0, 0}));
  EXPECT_EQ(MaskHash({1, 0, 1}), MaskHash({1, 0, 1}));
}

TEST(FeatureSubsetTest, ToStringCompact) {
  EXPECT_EQ(MaskToString({1, 0, 1, 1}), "{0,2,3}");
  EXPECT_EQ(MaskToString({0, 0}), "{}");
}

TEST(FeatureSubsetDeathTest, IndicesOutOfRangeAbort) {
  EXPECT_DEATH(IndicesToMask(2, {5}), "out of range");
}

}  // namespace
}  // namespace dfs::fs
