#include "fs/portfolio.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/scenario.h"
#include "testing/test_util.h"

namespace dfs::fs {
namespace {

TEST(PortfolioTest, NameListsMembers) {
  TimeSlicedPortfolio portfolio({StrategyId::kSfs, StrategyId::kTpeChi2}, 1);
  EXPECT_EQ(portfolio.name(), "Portfolio(SFS(NR)+TPE(Chi2))");
}

TEST(PortfolioTest, SolvesWhatAnyMemberSolves) {
  // Objective solvable at any 3-feature subset; every member can find it,
  // the portfolio certainly must.
  auto objective = [](const FeatureMask& mask) {
    return std::abs(CountSelected(mask) - 3.0);
  };
  testing::FakeEvalContext context(6, objective, 3000);
  context.set_train_data(testing::MakeLinearDataset(120, 4, 700));
  TimeSlicedPortfolio portfolio(
      {StrategyId::kSfs, StrategyId::kSimulatedAnnealing}, 3);
  portfolio.Run(context);
  EXPECT_TRUE(context.success());
}

TEST(PortfolioTest, SucceedsWhenOnlyOneMemberCan) {
  // Target only reachable through mask search, not through the baseline:
  // pair {1, 4} exactly. The baseline member burns its slice; SA solves it.
  const FeatureMask target = IndicesToMask(8, {1, 4});
  testing::FakeEvalContext context(
      8, testing::BitMismatchObjective(target), 4000);
  context.set_train_data(testing::MakeLinearDataset(100, 6, 701));
  TimeSlicedPortfolio portfolio(
      {StrategyId::kOriginalFeatureSet, StrategyId::kSimulatedAnnealing}, 5);
  portfolio.Run(context);
  EXPECT_TRUE(context.success());
}

TEST(PortfolioTest, RespectsEngineDeadlineEndToEnd) {
  Rng rng(702);
  auto scenario = core::MakeScenario(
      testing::MakeLinearDataset(200, 10, 703),
      ml::ModelKind::kLogisticRegression,
      [] {
        constraints::ConstraintSet set;
        set.min_f1 = 0.999;  // unsatisfiable
        set.max_search_seconds = 0.25;
        return set;
      }(),
      rng);
  ASSERT_TRUE(scenario.ok());
  core::DfsEngine engine(*scenario, core::EngineOptions());
  TimeSlicedPortfolio portfolio(
      {StrategyId::kSfs, StrategyId::kTpeChi2, StrategyId::kTpeMask}, 7);
  Stopwatch stopwatch;
  const core::RunResult result = engine.Run(portfolio);
  EXPECT_FALSE(result.success);
  EXPECT_LT(stopwatch.ElapsedSeconds(), 2.0);
  EXPECT_TRUE(result.timed_out);
}

TEST(PortfolioTest, CacheMakesRestartsCheap) {
  // Two rounds of the same member re-evaluate the same masks; with the
  // engine cache the second round is nearly free (cache_hits > 0).
  Rng rng(704);
  auto scenario = core::MakeScenario(
      testing::MakeLinearDataset(150, 4, 705),
      ml::ModelKind::kDecisionTree,
      [] {
        constraints::ConstraintSet set;
        set.min_f1 = 0.995;  // unsatisfiable: forces multiple rounds
        set.max_search_seconds = 0.4;
        return set;
      }(),
      rng);
  ASSERT_TRUE(scenario.ok());
  core::DfsEngine engine(*scenario, core::EngineOptions());
  PortfolioOptions options;
  options.initial_slice_seconds = 0.03;
  TimeSlicedPortfolio portfolio({StrategyId::kSfs, StrategyId::kSfs}, 9,
                                options);
  const core::RunResult result = engine.Run(portfolio);
  EXPECT_GT(result.cache_hits, 0);
}

TEST(PortfolioDeathTest, EmptyPortfolioAborts) {
  EXPECT_DEATH(TimeSlicedPortfolio({}, 1), "at least one member");
}

}  // namespace
}  // namespace dfs::fs
