// Tests for the strategy/ranking extensions beyond the paper's benchmark:
// BPSO(NR), GA(NR), TPE(mRMR).

#include <gtest/gtest.h>

#include <cmath>

#include "fs/evolutionary.h"
#include "fs/rankings/mrmr.h"
#include "fs/registry.h"
#include "testing/test_util.h"
#include "util/math_util.h"

namespace dfs::fs {
namespace {

using ::dfs::testing::BitMismatchObjective;
using ::dfs::testing::FakeEvalContext;

TEST(ExtensionRegistryTest, ExtensionsAreRegisteredButNotInTheSixteen) {
  EXPECT_EQ(AllStrategies().size(), 16u);  // paper benchmark untouched
  EXPECT_EQ(ExtensionStrategies().size(), 3u);
  for (StrategyId id : ExtensionStrategies()) {
    EXPECT_EQ(std::count(AllStrategies().begin(), AllStrategies().end(), id),
              0);
    auto strategy = CreateStrategy(id, 1);
    ASSERT_NE(strategy, nullptr);
    EXPECT_EQ(strategy->name(), StrategyIdToString(id));
    auto parsed = StrategyIdFromString(strategy->name());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, id);
  }
}

class ExtensionStrategyTest : public ::testing::TestWithParam<StrategyId> {};

TEST_P(ExtensionStrategyTest, SolvesSizeThreeTarget) {
  auto objective = [](const FeatureMask& mask) {
    return std::abs(CountSelected(mask) - 3.0);
  };
  FakeEvalContext context(6, objective, 5000);
  context.set_train_data(testing::MakeLinearDataset(120, 4, 800));
  auto strategy = CreateStrategy(GetParam(), 11);
  strategy->Run(context);
  EXPECT_TRUE(context.success()) << strategy->name();
}

TEST_P(ExtensionStrategyTest, StopsOnBudget) {
  FakeEvalContext context(8, [](const FeatureMask&) { return 1.0; }, 60);
  context.set_train_data(testing::MakeLinearDataset(80, 6, 801));
  auto strategy = CreateStrategy(GetParam(), 13);
  strategy->Run(context);
  EXPECT_FALSE(context.success());
  EXPECT_LE(context.evaluations(), 60);
}

INSTANTIATE_TEST_SUITE_P(
    Extensions, ExtensionStrategyTest,
    ::testing::ValuesIn(ExtensionStrategies()),
    [](const auto& info) {
      std::string clean;
      for (char c : StrategyIdToString(info.param)) {
        if (std::isalnum(static_cast<unsigned char>(c))) clean += c;
      }
      return clean;
    });

TEST(BinaryPsoTest, FindsBitTarget) {
  const FeatureMask target = IndicesToMask(10, {1, 4, 8});
  FakeEvalContext context(10, BitMismatchObjective(target), 6000);
  BinaryPsoStrategy pso(21);
  pso.Run(context);
  EXPECT_TRUE(context.success());
}

TEST(BinaryPsoTest, RespectsMaxFeatureCount) {
  FakeEvalContext context(10, [](const FeatureMask&) { return 1.0; }, 200);
  context.set_max_feature_count(2);
  BinaryPsoStrategy pso(22);
  pso.Run(context);
  EXPECT_LE(CountSelected(context.best_mask()), 2);
}

TEST(GeneticAlgorithmTest, FindsBitTarget) {
  const FeatureMask target = IndicesToMask(10, {0, 5});
  FakeEvalContext context(10, BitMismatchObjective(target), 6000);
  GeneticAlgorithmStrategy ga(23);
  ga.Run(context);
  EXPECT_TRUE(context.success());
}

TEST(GeneticAlgorithmTest, ElitismPreservesBest) {
  // Track: once a low objective is seen, the best never regresses because
  // elites survive unmodified. Verified via FakeEvalContext best tracking
  // plus a generation count large enough to churn the population.
  const FeatureMask target = IndicesToMask(8, {2, 6});
  FakeEvalContext context(8, BitMismatchObjective(target), 1500);
  GeneticAlgorithmOptions options;
  options.elites = 2;
  GeneticAlgorithmStrategy ga(24, options);
  ga.Run(context);
  EXPECT_LE(context.best_objective(), 1.0);
}

TEST(MrmrRankerTest, SignalBeatsNoise) {
  const data::Dataset train = testing::MakeLinearDataset(400, 5, 802);
  Rng rng(803);
  auto scores = MrmrRanker().Rank(train, rng);
  ASSERT_TRUE(scores.ok());
  const auto order = ArgsortDescending(*scores);
  EXPECT_TRUE((order[0] == 0 && order[1] == 1) ||
              (order[0] == 1 && order[1] == 0));
}

TEST(MrmrRankerTest, RedundantDuplicateRankedBelowComplementaryFeature) {
  // f0 = signal, f1 = exact duplicate of f0, f2 = independent second
  // signal. Plain MIM would rank the duplicate second; mRMR's redundancy
  // term must push the complementary f2 ahead of the duplicate.
  Rng data_rng(804);
  const int n = 500;
  std::vector<double> a(n), duplicate(n), b(n);
  std::vector<int> labels(n), groups(n, 0);
  for (int r = 0; r < n; ++r) {
    a[r] = data_rng.Uniform();
    duplicate[r] = a[r];
    b[r] = data_rng.Uniform();
    labels[r] = a[r] + b[r] > 1.0 ? 1 : 0;
  }
  auto dataset = data::Dataset::Create("mrmr", {"a", "dup", "b"},
                                       {a, duplicate, b}, labels, groups);
  ASSERT_TRUE(dataset.ok());
  Rng rng(805);
  auto scores = MrmrRanker().Rank(*dataset, rng);
  ASSERT_TRUE(scores.ok());
  const auto order = ArgsortDescending(*scores);
  // First pick: a or dup (identical relevance); second pick must be b.
  EXPECT_EQ(order[1], 2) << "complementary feature must precede duplicate";
}

TEST(MrmrRankerTest, DeterministicAndCompleteOrdering) {
  const data::Dataset train = testing::MakeLinearDataset(150, 6, 806);
  Rng rng_a(1), rng_b(1);
  MrmrRanker ranker;
  auto a = ranker.Rank(train, rng_a);
  auto b = ranker.Rank(train, rng_b);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, *b);
  // All scores distinct: the encoding is a total order.
  std::set<double> unique(a->begin(), a->end());
  EXPECT_EQ(unique.size(), a->size());
}

}  // namespace
}  // namespace dfs::fs
