// Determinism and concurrency tests for the parallel evaluation engine:
// EvaluateBatch must select byte-identical masks (and identical evaluation
// and cache-hit totals) at any thread count, and the sharded cache must
// survive concurrent acquire/publish/abandon traffic.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/eval_cache.h"
#include "core/scenario.h"
#include "fs/registry.h"
#include "testing/test_util.h"

namespace dfs::core {
namespace {

MlScenario MakeTestScenario(const constraints::ConstraintSet& set) {
  Rng rng(301);
  auto scenario =
      MakeScenario(testing::MakeLinearDataset(300, 4, 300),
                   ml::ModelKind::kLogisticRegression, set, rng);
  DFS_CHECK(scenario.ok());
  return std::move(scenario).value();
}

constraints::ConstraintSet GenerousSet(double min_f1) {
  constraints::ConstraintSet set;
  set.min_f1 = min_f1;
  // Generous deadline: determinism comparisons need both runs to finish
  // their search, not race the clock.
  set.max_search_seconds = 60.0;
  return set;
}

RunResult RunWithThreads(const MlScenario& scenario, fs::StrategyId id,
                         int num_threads) {
  EngineOptions options;
  options.seed = 77;
  options.num_threads = num_threads;
  DfsEngine engine(scenario, options);
  auto strategy = fs::CreateStrategy(id, /*seed=*/5);
  return engine.Run(*strategy);
}

void ExpectIdenticalRuns(fs::StrategyId id, double min_f1) {
  const MlScenario scenario = MakeTestScenario(GenerousSet(min_f1));
  const RunResult serial = RunWithThreads(scenario, id, 1);
  const RunResult parallel = RunWithThreads(scenario, id, 4);
  EXPECT_EQ(serial.selected, parallel.selected);
  EXPECT_EQ(serial.success, parallel.success);
  EXPECT_EQ(serial.evaluations, parallel.evaluations);
  EXPECT_EQ(serial.cache_hits, parallel.cache_hits);
  EXPECT_EQ(serial.search_exhausted, parallel.search_exhausted);
  EXPECT_DOUBLE_EQ(serial.best_distance_validation,
                   parallel.best_distance_validation);
}

// An achievable accuracy bound exercises the success path; an unreachable
// one forces a full sweep of the search space (more evaluations, more
// cache traffic) and the Table-4 failure bookkeeping.
TEST(EngineParallelTest, SequentialForwardDeterministic) {
  ExpectIdenticalRuns(fs::StrategyId::kSfs, 0.6);
}

TEST(EngineParallelTest, SequentialFloatingDeterministicUnderFullSweep) {
  ExpectIdenticalRuns(fs::StrategyId::kSffs, 0.999);
}

TEST(EngineParallelTest, RfeDeterministic) {
  ExpectIdenticalRuns(fs::StrategyId::kRfe, 0.999);
}

// NSGA-II never exhausts its space, so only the success path terminates
// deterministically before the deadline: an achievable bound makes both
// runs stop at the same (first) satisfying mask.
TEST(EngineParallelTest, Nsga2Deterministic) {
  ExpectIdenticalRuns(fs::StrategyId::kNsga2, 0.6);
}

TEST(EngineParallelTest, ExhaustiveDeterministic) {
  ExpectIdenticalRuns(fs::StrategyId::kExhaustive, 0.999);
}

// EvaluateBatch outcomes must be positionally identical to a serial
// Evaluate loop over the same masks (including the duplicate mask, which
// the parallel path serves through in-flight deduplication).
TEST(EngineParallelTest, BatchMatchesSerialEvaluateLoop) {
  const MlScenario scenario = MakeTestScenario(GenerousSet(0.999));
  EngineOptions options;
  options.seed = 77;

  class NullStrategy : public fs::FeatureSelectionStrategy {
   public:
    std::string name() const override { return "null"; }
    fs::StrategyInfo info() const override { return {}; }
    void Run(fs::EvalContext&) override {}
  } warmup;

  std::vector<fs::FeatureMask> masks;
  const int n = 6;
  for (int f = 0; f < n; ++f) masks.push_back(fs::IndicesToMask(n, {f}));
  masks.push_back(fs::IndicesToMask(n, {0}));  // duplicate -> cache path
  masks.push_back(fs::IndicesToMask(n, {1, 3, 5}));

  options.num_threads = 1;
  DfsEngine serial(scenario, options);
  serial.Run(warmup);  // arms the deadline
  std::vector<fs::EvalOutcome> expected;
  for (const auto& mask : masks) expected.push_back(serial.Evaluate(mask));

  options.num_threads = 4;
  DfsEngine parallel(scenario, options);
  parallel.Run(warmup);
  const std::vector<fs::EvalOutcome> actual = parallel.EvaluateBatch(masks);

  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].evaluated, actual[i].evaluated) << "mask " << i;
    EXPECT_EQ(expected[i].satisfied_validation,
              actual[i].satisfied_validation)
        << "mask " << i;
    EXPECT_EQ(expected[i].success, actual[i].success) << "mask " << i;
    EXPECT_DOUBLE_EQ(expected[i].objective, actual[i].objective)
        << "mask " << i;
    EXPECT_DOUBLE_EQ(expected[i].distance, actual[i].distance)
        << "mask " << i;
  }
}

// ---- ShardedEvalCache ------------------------------------------------

fs::EvalOutcome OutcomeFor(const fs::FeatureMask& mask) {
  fs::EvalOutcome outcome;
  outcome.evaluated = true;
  outcome.objective = static_cast<double>(fs::MaskHash(mask) % 1000);
  return outcome;
}

// Many threads race Acquire/Publish over a small overlapping mask set:
// every thread must come back with the mask's canonical outcome whether it
// was the owner or a (possibly blocked) hit, and owner/hit totals must
// reconcile to exactly one owner per distinct mask.
TEST(ShardedEvalCacheTest, ConcurrentAcquirePublish) {
  constexpr int kThreads = 8;
  constexpr int kMasks = 32;
  constexpr int kRounds = 40;
  ShardedEvalCache cache(core::EvalCacheOptions{.num_shards = 4});

  std::vector<fs::FeatureMask> masks;
  for (int m = 0; m < kMasks; ++m) {
    masks.push_back(fs::IndicesToMask(64, {m, (m * 7 + 1) % 64}));
  }

  std::atomic<int> owners{0};
  std::atomic<int> hits{0};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        // Each thread walks the masks at a different stride so owners and
        // waiters interleave.
        const auto& mask = masks[(round * (t + 1) + t) % kMasks];
        fs::EvalOutcome hit;
        switch (cache.Acquire(mask, &hit)) {
          case ShardedEvalCache::Acquired::kOwner:
            owners.fetch_add(1);
            cache.Publish(mask, OutcomeFor(mask));
            break;
          case ShardedEvalCache::Acquired::kHit:
            hits.fetch_add(1);
            if (hit.objective != OutcomeFor(mask).objective) {
              mismatches.fetch_add(1);
            }
            break;
          case ShardedEvalCache::Acquired::kAbandoned:
            ADD_FAILURE() << "unexpected abandonment";
            break;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(mismatches.load(), 0);
  // Every distinct mask is owned exactly once; everything else is a hit.
  EXPECT_EQ(owners.load(), kMasks);
  EXPECT_EQ(owners.load() + hits.load(), kThreads * kRounds);
  EXPECT_EQ(cache.size(), static_cast<size_t>(kMasks));
}

// Abandoned entries must not poison the cache: waiters observe the
// abandonment, and the next Acquire for that mask becomes a fresh owner.
TEST(ShardedEvalCacheTest, AbandonReleasesWaitersAndMask) {
  ShardedEvalCache cache;
  const fs::FeatureMask mask = fs::IndicesToMask(16, {2, 5});

  fs::EvalOutcome scratch;
  ASSERT_EQ(cache.Acquire(mask, &scratch),
            ShardedEvalCache::Acquired::kOwner);

  std::atomic<int> abandoned_seen{0};
  std::thread waiter([&] {
    fs::EvalOutcome hit;
    switch (cache.Acquire(mask, &hit)) {
      case ShardedEvalCache::Acquired::kAbandoned:
        abandoned_seen.fetch_add(1);
        break;
      case ShardedEvalCache::Acquired::kOwner:
        // Lost the startup race (Abandon ran before this Acquire): release
        // the fresh ownership so the re-acquire below cannot block.
        cache.Abandon(mask);
        break;
      case ShardedEvalCache::Acquired::kHit:
        ADD_FAILURE() << "unexpected hit";
        break;
    }
  });
  // Give the waiter time to park in Acquire's wait before abandoning, so
  // the abandonment-wakes-waiters path is what actually runs.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  cache.Abandon(mask);
  waiter.join();
  EXPECT_EQ(abandoned_seen.load(), 1);
  EXPECT_EQ(cache.size(), 0u);

  // The mask is re-ownable after abandonment and publishes normally.
  ASSERT_EQ(cache.Acquire(mask, &scratch),
            ShardedEvalCache::Acquired::kOwner);
  cache.Publish(mask, OutcomeFor(mask));
  EXPECT_EQ(cache.Acquire(mask, &scratch),
            ShardedEvalCache::Acquired::kHit);
  EXPECT_DOUBLE_EQ(scratch.objective, OutcomeFor(mask).objective);
}

TEST(ShardedEvalCacheTest, ClearResetsAllShards) {
  ShardedEvalCache cache(core::EvalCacheOptions{.num_shards = 3});
  fs::EvalOutcome scratch;
  for (int m = 0; m < 10; ++m) {
    const fs::FeatureMask mask = fs::IndicesToMask(16, {m});
    ASSERT_EQ(cache.Acquire(mask, &scratch),
              ShardedEvalCache::Acquired::kOwner);
    cache.Publish(mask, OutcomeFor(mask));
  }
  EXPECT_EQ(cache.size(), 10u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Acquire(fs::IndicesToMask(16, {3}), &scratch),
            ShardedEvalCache::Acquired::kOwner);
  cache.Abandon(fs::IndicesToMask(16, {3}));
}

}  // namespace
}  // namespace dfs::core
