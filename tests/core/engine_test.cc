#include "core/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <utility>

#include "core/scenario.h"
#include "fs/registry.h"
#include "testing/test_util.h"

namespace dfs::core {
namespace {

MlScenario MakeTestScenario(const constraints::ConstraintSet& set,
                            ml::ModelKind model = ml::ModelKind::kLogisticRegression,
                            int rows = 300, int noise = 4) {
  Rng rng(301);
  auto scenario = MakeScenario(testing::MakeLinearDataset(rows, noise, 300),
                               model, set, rng);
  DFS_CHECK(scenario.ok());
  return std::move(scenario).value();
}

constraints::ConstraintSet EasySet() {
  constraints::ConstraintSet set;
  set.min_f1 = 0.6;
  set.max_search_seconds = 5.0;
  return set;
}

TEST(DfsEngineTest, ContextViewMatchesScenario) {
  const MlScenario scenario = MakeTestScenario(EasySet());
  DfsEngine engine(scenario, EngineOptions());
  EXPECT_EQ(engine.num_features(), 6);
  EXPECT_EQ(engine.max_feature_count(), 6);
  EXPECT_EQ(engine.train_data().num_rows(), scenario.split.train.num_rows());
  EXPECT_EQ(engine.train_data().labels(), scenario.split.train.labels());
}

TEST(DfsEngineTest, MaxFeatureCountFollowsConstraint) {
  constraints::ConstraintSet set = EasySet();
  set.max_feature_fraction = 0.34;
  DfsEngine engine(MakeTestScenario(set), EngineOptions());
  EXPECT_EQ(engine.max_feature_count(), 2);  // floor(0.34 * 6)
}

TEST(DfsEngineTest, SffsSolvesEasyScenario) {
  DfsEngine engine(MakeTestScenario(EasySet()), EngineOptions());
  auto strategy = fs::CreateStrategy(fs::StrategyId::kSffs, 1);
  const RunResult result = engine.Run(*strategy);
  EXPECT_TRUE(result.success);
  EXPECT_FALSE(result.selected.empty());
  EXPECT_GE(result.validation_values.f1, 0.6);
  EXPECT_GE(result.test_values.f1, 0.6);
  EXPECT_GT(result.evaluations, 0);
  EXPECT_FALSE(result.timed_out);
}

TEST(DfsEngineTest, ImpossibleAccuracyFails) {
  constraints::ConstraintSet set;
  set.min_f1 = 0.999;  // unreachable with label noise
  set.max_search_seconds = 0.3;
  DfsEngine engine(MakeTestScenario(set), EngineOptions());
  auto strategy = fs::CreateStrategy(fs::StrategyId::kTpeChi2, 2);
  const RunResult result = engine.Run(*strategy);
  EXPECT_FALSE(result.success);
  // Failure analysis fields populated (Table 4).
  EXPECT_LT(result.best_distance_validation, 1.0);
  EXPECT_GT(result.best_distance_validation, 0.0);
  EXPECT_LT(result.best_distance_test, 1e17);
}

TEST(DfsEngineTest, DeadlineIsEnforced) {
  constraints::ConstraintSet set = EasySet();
  set.min_f1 = 0.999;
  set.max_search_seconds = 0.05;
  // 22 features: exhaustive search cannot finish 2^22 subsets in 50 ms.
  DfsEngine engine(MakeTestScenario(set, ml::ModelKind::kLogisticRegression,
                                    300, 20),
                   EngineOptions());
  auto strategy = fs::CreateStrategy(fs::StrategyId::kExhaustive, 3);
  Stopwatch stopwatch;
  const RunResult result = engine.Run(*strategy);
  EXPECT_FALSE(result.success);
  EXPECT_TRUE(result.timed_out);
  // Generous slack: one evaluation can overshoot the deadline slightly.
  EXPECT_LT(stopwatch.ElapsedSeconds(), 2.0);
}

TEST(DfsEngineTest, StopTokenCancelsARunningSearch) {
  constraints::ConstraintSet set;
  set.min_f1 = 0.999;          // unreachable: the search never succeeds
  set.max_search_seconds = 30.0;  // the test must finish long before this

  // Flips the shared token after a handful of evaluations, simulating a
  // cancel request arriving from another thread mid-search.
  class CancelAfterThree : public fs::FeatureSelectionStrategy {
   public:
    explicit CancelAfterThree(std::shared_ptr<std::atomic<bool>> token)
        : token_(std::move(token)) {}
    std::string name() const override { return "cancel-after-three"; }
    fs::StrategyInfo info() const override { return {}; }
    void Run(fs::EvalContext& context) override {
      int evaluations = 0;
      while (!context.ShouldStop()) {
        fs::FeatureMask mask(context.num_features(), false);
        mask[evaluations % context.num_features()] = true;
        // Distinct single-feature masks cycle, but the cache makes repeats
        // free, so the loop spins fast once the token flips.
        mask[(evaluations / context.num_features()) %
             context.num_features()] = true;
        context.Evaluate(mask);
        if (++evaluations == 3) token_->store(true);
      }
    }

   private:
    std::shared_ptr<std::atomic<bool>> token_;
  };

  EngineOptions options;
  options.stop_token = std::make_shared<std::atomic<bool>>(false);
  DfsEngine engine(MakeTestScenario(set), options);
  CancelAfterThree strategy(options.stop_token);
  Stopwatch stopwatch;
  const RunResult result = engine.Run(strategy);
  EXPECT_TRUE(result.cancelled);
  EXPECT_FALSE(result.success);
  EXPECT_FALSE(result.timed_out);
  EXPECT_FALSE(result.search_exhausted);
  EXPECT_LE(result.evaluations, 4);  // stops within one evaluation
  EXPECT_LT(stopwatch.ElapsedSeconds(), 5.0);  // nowhere near the 30 s budget
}

TEST(DfsEngineTest, UnsetStopTokenDoesNotCancel) {
  EngineOptions options;
  options.stop_token = std::make_shared<std::atomic<bool>>(false);
  DfsEngine engine(MakeTestScenario(EasySet()), options);
  const RunResult result =
      engine.Run(*fs::CreateStrategy(fs::StrategyId::kSffs, 1));
  EXPECT_FALSE(result.cancelled);
  EXPECT_TRUE(result.success);
}

TEST(DfsEngineTest, EvaluationCacheHitsOnRepeatedMask) {
  const MlScenario scenario = MakeTestScenario(EasySet());
  EngineOptions options;
  DfsEngine engine(scenario, options);
  // SBS re-evaluates overlapping masks rarely, so drive Evaluate directly.
  engine.Run(*fs::CreateStrategy(fs::StrategyId::kOriginalFeatureSet, 4));
  const fs::FeatureMask mask = fs::FullMask(6);
  const fs::EvalOutcome first = engine.Evaluate(mask);
  (void)first;
  // Second Run resets the cache; within one run, repeated Evaluate hits.
  DfsEngine fresh(scenario, options);
  fresh.Run(*fs::CreateStrategy(fs::StrategyId::kOriginalFeatureSet, 4));
  (void)fresh;
}

TEST(DfsEngineTest, CacheCountsRecorded) {
  const MlScenario scenario = MakeTestScenario(EasySet());

  // A strategy that evaluates the same mask twice.
  class RepeatStrategy : public fs::FeatureSelectionStrategy {
   public:
    std::string name() const override { return "repeat"; }
    fs::StrategyInfo info() const override { return {}; }
    void Run(fs::EvalContext& context) override {
      const fs::FeatureMask mask = fs::FullMask(context.num_features());
      context.Evaluate(mask);
      context.Evaluate(mask);
    }
  };
  EngineOptions options;
  DfsEngine engine(scenario, options);
  RepeatStrategy strategy;
  const RunResult result = engine.Run(strategy);
  EXPECT_EQ(result.evaluations, 1);
  EXPECT_EQ(result.cache_hits, 1);

  EngineOptions no_cache = options;
  no_cache.enable_eval_cache = false;
  DfsEngine engine2(scenario, no_cache);
  const RunResult result2 = engine2.Run(strategy);
  EXPECT_EQ(result2.evaluations, 2);
  EXPECT_EQ(result2.cache_hits, 0);
}

TEST(DfsEngineTest, PrivacyConstraintTrainsDpModel) {
  constraints::ConstraintSet set = EasySet();
  set.min_f1 = 0.2;
  set.privacy_epsilon = 100.0;  // mild noise
  DfsEngine engine(MakeTestScenario(set), EngineOptions());
  auto strategy = fs::CreateStrategy(fs::StrategyId::kSfs, 5);
  const RunResult result = engine.Run(*strategy);
  // Generous epsilon + low bar: should succeed with the DP model.
  EXPECT_TRUE(result.success);
}

TEST(DfsEngineTest, EoConstraintMeasured) {
  constraints::ConstraintSet set = EasySet();
  set.min_f1 = 0.2;
  set.min_equal_opportunity = 0.5;
  DfsEngine engine(MakeTestScenario(set), EngineOptions());
  auto strategy = fs::CreateStrategy(fs::StrategyId::kSfs, 6);
  const RunResult result = engine.Run(*strategy);
  if (result.success) {
    EXPECT_GE(result.validation_values.equal_opportunity, 0.5);
    EXPECT_GE(result.test_values.equal_opportunity, 0.5);
  }
}

TEST(DfsEngineTest, HpoImprovesOrMatchesValidationF1) {
  const MlScenario scenario =
      MakeTestScenario(EasySet(), ml::ModelKind::kDecisionTree);
  EngineOptions default_options;
  EngineOptions hpo_options;
  hpo_options.use_hpo = true;
  DfsEngine default_engine(scenario, default_options);
  DfsEngine hpo_engine(scenario, hpo_options);
  const fs::FeatureMask mask = fs::FullMask(6);
  default_engine.Run(*fs::CreateStrategy(fs::StrategyId::kOriginalFeatureSet, 1));
  hpo_engine.Run(*fs::CreateStrategy(fs::StrategyId::kOriginalFeatureSet, 1));
  const fs::EvalOutcome plain = default_engine.Evaluate(mask);
  const fs::EvalOutcome tuned = hpo_engine.Evaluate(mask);
  ASSERT_TRUE(plain.evaluated);
  ASSERT_TRUE(tuned.evaluated);
  EXPECT_GE(tuned.validation.f1 + 1e-9, plain.validation.f1);
}

TEST(DfsEngineTest, UtilityModeKeepsSearchingAndMaximizesF1) {
  constraints::ConstraintSet set;
  set.min_f1 = 0.3;  // easy
  set.max_search_seconds = 0.4;
  EngineOptions options;
  options.maximize_f1_utility = true;
  DfsEngine engine(MakeTestScenario(set), options);
  // SA never exhausts its search space, so it runs to the deadline.
  auto strategy = fs::CreateStrategy(fs::StrategyId::kSimulatedAnnealing, 7);
  const RunResult result = engine.Run(*strategy);
  EXPECT_TRUE(result.success);
  // Utility mode runs to the deadline, not to first success.
  EXPECT_GE(result.search_seconds, 0.3);
  EXPECT_GT(result.test_f1, 0.3);
}

TEST(DfsEngineTest, EmptyMaskNotEvaluated) {
  DfsEngine engine(MakeTestScenario(EasySet()), EngineOptions());
  engine.Run(*fs::CreateStrategy(fs::StrategyId::kOriginalFeatureSet, 8));
  const fs::EvalOutcome outcome = engine.Evaluate(fs::FeatureMask(6, 0));
  EXPECT_FALSE(outcome.evaluated);
}

TEST(DfsEngineTest, TraceRecordsEveryUncachedEvaluation) {
  EngineOptions options;
  options.record_trace = true;
  DfsEngine engine(MakeTestScenario(EasySet()), options);
  auto strategy = fs::CreateStrategy(fs::StrategyId::kSfs, 9);
  const RunResult result = engine.Run(*strategy);
  EXPECT_EQ(static_cast<int>(result.trace.size()), result.evaluations);
  ASSERT_FALSE(result.trace.empty());
  double last_seconds = -1.0;
  for (const TracePoint& point : result.trace) {
    EXPECT_GE(point.seconds, last_seconds);  // monotone timestamps
    last_seconds = point.seconds;
    EXPECT_GE(point.selected_features, 1);
    EXPECT_GE(point.distance, 0.0);
  }
  if (result.success) {
    // Candidate batches are attempted in full (the determinism contract),
    // so evaluations recorded after the successful one may trail it in the
    // trace; the success point itself must still be present.
    bool any_success = false;
    for (const TracePoint& point : result.trace) {
      any_success = any_success || point.success;
    }
    EXPECT_TRUE(any_success);
  }
}

TEST(DfsEngineTest, TraceOffByDefault) {
  DfsEngine engine(MakeTestScenario(EasySet()), EngineOptions());
  auto strategy = fs::CreateStrategy(fs::StrategyId::kSfs, 9);
  const RunResult result = engine.Run(*strategy);
  EXPECT_TRUE(result.trace.empty());
}

TEST(DfsEngineTest, FittedImportancesMatchSelectionSize) {
  DfsEngine engine(MakeTestScenario(EasySet()), EngineOptions());
  auto importances = engine.FittedImportances(fs::IndicesToMask(6, {0, 3}));
  ASSERT_TRUE(importances.ok());
  EXPECT_EQ(importances->size(), 2u);
}

TEST(DfsEngineTest, FittedImportancesFallsBackToPermutationForNb) {
  const MlScenario scenario =
      MakeTestScenario(EasySet(), ml::ModelKind::kNaiveBayes);
  DfsEngine engine(scenario, EngineOptions());
  auto importances = engine.FittedImportances(fs::FullMask(6));
  ASSERT_TRUE(importances.ok());
  EXPECT_EQ(importances->size(), 6u);
}

}  // namespace
}  // namespace dfs::core
