// End-to-end integration sweeps: the DFS engine's success claims must be
// *true* — whenever a run reports success, retraining the scenario's model
// on the returned subset must actually satisfy every declared constraint on
// the test split. This is the system-level contract of Figure 2.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/scenario.h"
#include "data/benchmark_suite.h"
#include "fs/registry.h"
#include "metrics/classification.h"
#include "metrics/fairness.h"
#include "ml/grid_search.h"

namespace dfs::core {
namespace {

struct IntegrationCase {
  const char* name;
  int dataset_index;
  ml::ModelKind model;
  double min_f1;
  double min_eo;          // <= 0 disables
  double max_fraction;    // <= 0 disables
  fs::StrategyId strategy;
};

class EngineIntegrationTest
    : public ::testing::TestWithParam<IntegrationCase> {};

TEST_P(EngineIntegrationTest, SuccessImpliesConstraintsHoldOnTest) {
  const IntegrationCase& test_case = GetParam();
  auto dataset = data::GenerateBenchmarkDataset(test_case.dataset_index, 3,
                                                /*row_scale=*/0.3);
  ASSERT_TRUE(dataset.ok());

  constraints::ConstraintSet set;
  set.min_f1 = test_case.min_f1;
  set.max_search_seconds = 1.5;
  if (test_case.min_eo > 0) set.min_equal_opportunity = test_case.min_eo;
  if (test_case.max_fraction > 0) {
    set.max_feature_fraction = test_case.max_fraction;
  }

  Rng rng(31);
  auto scenario = MakeScenario(*dataset, test_case.model, set, rng);
  ASSERT_TRUE(scenario.ok());
  EngineOptions options;
  options.use_hpo = true;
  DfsEngine engine(*scenario, options);
  auto strategy = fs::CreateStrategy(test_case.strategy, 17);
  const RunResult result = engine.Run(*strategy);
  if (!result.success) {
    GTEST_SKIP() << "scenario not satisfied within budget (allowed)";
  }

  // Independently verify the claim: retrain via the same HPO procedure on
  // the returned subset and re-measure on test.
  const std::vector<int> features = fs::MaskToIndices(result.selected);
  ASSERT_FALSE(features.empty());
  if (set.max_feature_fraction.has_value()) {
    EXPECT_LE(static_cast<int>(features.size()),
              set.MaxFeatureCount(dataset->num_features()));
  }
  const auto& split = scenario->split;
  auto search = ml::GridSearch(test_case.model,
                               split.train.ToMatrix(features),
                               split.train.labels(),
                               split.validation.ToMatrix(features),
                               split.validation.labels());
  ASSERT_TRUE(search.ok());
  const auto predictions =
      search->best_model->PredictBatch(split.test.ToMatrix(features));
  const double f1 = metrics::F1Score(split.test.labels(), predictions);
  EXPECT_GE(f1 + 1e-9, set.min_f1);
  if (set.min_equal_opportunity.has_value()) {
    const double eo = metrics::EqualOpportunity(
        split.test.labels(), predictions, split.test.groups());
    EXPECT_GE(eo + 1e-9, *set.min_equal_opportunity);
  }
  // And the engine's reported test metrics must match our re-measurement.
  EXPECT_NEAR(result.test_values.f1, f1, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineIntegrationTest,
    ::testing::Values(
        IntegrationCase{"CompasLrSffsFair", 6,
                        ml::ModelKind::kLogisticRegression, 0.6, 0.85, -1,
                        fs::StrategyId::kSffs},
        IntegrationCase{"TelcoDtSfsSize", 5, ml::ModelKind::kDecisionTree,
                        0.55, -1, 0.3, fs::StrategyId::kSfs},
        IntegrationCase{"GermanNbChi2", 12, ml::ModelKind::kNaiveBayes, 0.55,
                        -1, -1, fs::StrategyId::kTpeChi2},
        IntegrationCase{"LiverLrExhaustiveFair", 13,
                        ml::ModelKind::kLogisticRegression, 0.55, 0.8, 0.5,
                        fs::StrategyId::kExhaustive},
        IntegrationCase{"IrishDtSa", 14, ml::ModelKind::kDecisionTree, 0.55,
                        -1, 0.5, fs::StrategyId::kSimulatedAnnealing},
        IntegrationCase{"BrazilLrNsga2Fair", 16,
                        ml::ModelKind::kLogisticRegression, 0.55, 0.8, -1,
                        fs::StrategyId::kNsga2},
        IntegrationCase{"TumorNbFcbf", 17, ml::ModelKind::kNaiveBayes, 0.5,
                        -1, 0.6, fs::StrategyId::kTpeFcbf},
        IntegrationCase{"AdultLrTpeMaskFair", 2,
                        ml::ModelKind::kLogisticRegression, 0.6, 0.85, -1,
                        fs::StrategyId::kTpeMask}),
    [](const auto& info) { return std::string(info.param.name); });

}  // namespace
}  // namespace dfs::core
