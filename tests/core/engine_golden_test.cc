// Golden tests for the zero-copy evaluation path: the engine's span/scratch
// pipeline must be byte-identical to the original allocating pipeline
// (Dataset::ToMatrix per split + allocating PredictBatch), which is
// re-implemented here from public APIs as the reference. Every comparison
// is exact (double ==): the span kernels were written to preserve
// operation order, so any drift is a bug, not noise.

#include "core/engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/scenario.h"
#include "fs/feature_subset.h"
#include "metrics/classification.h"
#include "metrics/fairness.h"
#include "metrics/robustness.h"
#include "ml/dp/dp_classifier.h"
#include "ml/grid_search.h"
#include "testing/test_util.h"

namespace dfs::core {
namespace {

// Replicates DfsEngine::EvalSeed (documented in engine.cc): SplitMix64
// finalizer over (run seed, mask hash).
uint64_t ReferenceEvalSeed(uint64_t seed, const fs::FeatureMask& mask) {
  uint64_t z = seed + 0x9E3779B97F4A7C15ULL * fs::MaskHash(mask);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// The pre-span measurement path: allocate a fresh gathered matrix and a
// fresh prediction vector per call.
constraints::MetricValues ReferenceMeasure(const MlScenario& scenario,
                                           const EngineOptions& options,
                                           const ml::Classifier& model,
                                           const std::vector<int>& features,
                                           const data::Dataset& split,
                                           Rng& rng) {
  const int total = scenario.split.train.num_features();
  constraints::MetricValues values;
  values.selected_features = static_cast<int>(features.size());
  values.total_features = total;
  values.feature_fraction =
      static_cast<double>(features.size()) / std::max(1, total);
  const linalg::Matrix x = split.ToMatrix(features);
  const std::vector<int> predictions = model.PredictBatch(x);
  values.f1 = metrics::F1Score(split.labels(), predictions);
  if (scenario.constraint_set.min_equal_opportunity.has_value()) {
    values.equal_opportunity =
        metrics::EqualOpportunity(split.labels(), predictions, split.groups());
  }
  if (scenario.constraint_set.min_safety.has_value()) {
    values.safety = metrics::EmpiricalRobustness(model, x, split.labels(),
                                                 rng, options.robustness);
  }
  return values;
}

// The pre-span training path: fresh ToMatrix gathers for train and (under
// HPO) validation, allocating batch predictions in the grid loop.
StatusOr<std::unique_ptr<ml::Classifier>> ReferenceTrain(
    const MlScenario& scenario, const EngineOptions& options,
    const std::vector<int>& features) {
  const auto& split = scenario.split;
  const linalg::Matrix train_x = split.train.ToMatrix(features);
  const bool is_private = scenario.constraint_set.privacy_epsilon.has_value();
  const double epsilon =
      scenario.constraint_set.privacy_epsilon.value_or(0.0);
  const int total = split.train.num_features();

  std::vector<ml::Hyperparameters> grid;
  if (options.use_hpo) {
    grid = ml::HyperparameterGrid(scenario.model);
  } else {
    grid.push_back(ml::Hyperparameters());
  }

  std::unique_ptr<ml::Classifier> best_model;
  double best_f1 = -1.0;
  const linalg::Matrix validation_x = split.validation.ToMatrix(features);
  for (const auto& params : grid) {
    std::unique_ptr<ml::Classifier> model =
        is_private
            ? ml::CreateDpClassifier(
                  scenario.model, params, epsilon,
                  options.seed ^
                      fs::MaskHash(fs::IndicesToMask(total, features)))
            : ml::CreateClassifier(scenario.model, params);
    DFS_RETURN_IF_ERROR(model->Fit(train_x, split.train.labels()));
    if (grid.size() == 1) return model;
    const double f1 = metrics::F1Score(split.validation.labels(),
                                       model->PredictBatch(validation_x));
    if (f1 > best_f1) {
      best_f1 = f1;
      best_model = std::move(model);
    }
  }
  if (best_model == nullptr) return InternalError("no model trained");
  return best_model;
}

struct ReferenceEvaluation {
  fs::EvalOutcome outcome;
  constraints::MetricValues test_values;
  bool have_test_values = false;
};

// The full pre-span evaluation: train, measure validation, confirm on test
// behind the satisfied-validation gate, with the per-mask RNG stream.
ReferenceEvaluation ReferenceEvaluate(const MlScenario& scenario,
                                      const EngineOptions& options,
                                      const fs::FeatureMask& mask) {
  ReferenceEvaluation result;
  const std::vector<int> features = fs::MaskToIndices(mask);
  auto model = ReferenceTrain(scenario, options, features);
  if (!model.ok()) return result;
  Rng eval_rng(ReferenceEvalSeed(options.seed, mask));

  fs::EvalOutcome& outcome = result.outcome;
  outcome.evaluated = true;
  outcome.validation = ReferenceMeasure(scenario, options, **model, features,
                                        scenario.split.validation, eval_rng);
  outcome.distance = scenario.constraint_set.Distance(outcome.validation);
  outcome.objective = scenario.constraint_set.Objective(
      outcome.validation, options.maximize_f1_utility);
  outcome.satisfied_validation =
      scenario.constraint_set.Satisfied(outcome.validation);
  if (outcome.satisfied_validation) {
    result.test_values = ReferenceMeasure(scenario, options, **model,
                                          features, scenario.split.test,
                                          eval_rng);
    result.have_test_values = true;
    outcome.success = scenario.constraint_set.Satisfied(result.test_values);
  }
  return result;
}

void ExpectBitwiseEqual(const constraints::MetricValues& expected,
                        const constraints::MetricValues& actual) {
  EXPECT_EQ(expected.f1, actual.f1);
  EXPECT_EQ(expected.equal_opportunity, actual.equal_opportunity);
  EXPECT_EQ(expected.safety, actual.safety);
  EXPECT_EQ(expected.feature_fraction, actual.feature_fraction);
  EXPECT_EQ(expected.selected_features, actual.selected_features);
  EXPECT_EQ(expected.total_features, actual.total_features);
}

void ExpectOutcomeEqual(const fs::EvalOutcome& expected,
                        const fs::EvalOutcome& actual) {
  EXPECT_EQ(expected.evaluated, actual.evaluated);
  ExpectBitwiseEqual(expected.validation, actual.validation);
  EXPECT_EQ(expected.distance, actual.distance);
  EXPECT_EQ(expected.objective, actual.objective);
  EXPECT_EQ(expected.satisfied_validation, actual.satisfied_validation);
  EXPECT_EQ(expected.success, actual.success);
}

MlScenario MakeGoldenScenario(ml::ModelKind kind,
                              const constraints::ConstraintSet& constraints) {
  const data::Dataset dataset = testing::MakeLinearDataset(120, 3, 77);
  Rng rng(13);
  auto scenario = MakeScenario(dataset, kind, constraints, rng);
  DFS_CHECK(scenario.ok());
  return std::move(scenario).value();
}

std::vector<fs::FeatureMask> GoldenMasks(int num_features) {
  std::vector<fs::FeatureMask> masks;
  for (int f = 0; f < num_features; ++f) {
    masks.push_back(fs::IndicesToMask(num_features, {f}));
    masks.push_back(
        fs::IndicesToMask(num_features, {f, (f + 2) % num_features}));
  }
  masks.push_back(fs::IndicesToMask(num_features, {0, 1}));
  return masks;
}

// Evaluates a fixed mask list in order through the EvalContext interface,
// honoring ShouldStop like any real strategy (so the engine's
// stop-at-success reduction is exercised).
class FixedListStrategy : public fs::FeatureSelectionStrategy {
 public:
  explicit FixedListStrategy(std::vector<fs::FeatureMask> masks)
      : masks_(std::move(masks)) {}
  std::string name() const override { return "fixed-list"; }
  fs::StrategyInfo info() const override { return {}; }
  void Run(fs::EvalContext& context) override {
    for (const auto& mask : masks_) {
      if (context.ShouldStop()) return;
      context.Evaluate(mask);
    }
  }

 private:
  std::vector<fs::FeatureMask> masks_;
};

// Reference re-implementation of the engine's reduction (RecordOutcome +
// the end-of-Run re-measure) over the same mask sequence.
struct ReferenceRun {
  bool success = false;
  fs::FeatureMask selected;
  constraints::MetricValues validation_values;
  constraints::MetricValues test_values;
  double best_distance_validation = 1e18;
  double best_distance_test = 1e18;
  double test_f1 = 0.0;
};

ReferenceRun ReferenceSearch(const MlScenario& scenario,
                             const EngineOptions& options,
                             const std::vector<fs::FeatureMask>& masks) {
  ReferenceRun run;
  double best_objective = 1e18;
  bool success_found = false;
  for (const auto& mask : masks) {
    if (success_found) break;
    const ReferenceEvaluation ref = ReferenceEvaluate(scenario, options, mask);
    if (!ref.outcome.evaluated) continue;
    const bool improves = ref.outcome.objective < best_objective;
    const bool first_success = ref.outcome.success && !success_found;
    if (first_success || (improves && !success_found)) {
      best_objective = ref.outcome.objective;
      run.selected = mask;
      run.validation_values = ref.outcome.validation;
      run.best_distance_validation = ref.outcome.distance;
      if (ref.have_test_values) {
        run.test_values = ref.test_values;
        run.best_distance_test =
            scenario.constraint_set.Distance(ref.test_values);
        run.test_f1 = ref.test_values.f1;
      } else {
        run.best_distance_test = 1e18;
        run.test_f1 = 0.0;
      }
    }
    if (ref.outcome.success && !success_found) {
      success_found = true;
      run.success = true;
    }
  }
  if (!success_found && !run.selected.empty() &&
      fs::CountSelected(run.selected) > 0 && run.best_distance_test >= 1e17) {
    const std::vector<int> features = fs::MaskToIndices(run.selected);
    auto model = ReferenceTrain(scenario, options, features);
    if (model.ok()) {
      Rng final_rng(ReferenceEvalSeed(options.seed, run.selected));
      run.test_values = ReferenceMeasure(scenario, options, **model, features,
                                         scenario.split.test, final_rng);
      run.best_distance_test =
          scenario.constraint_set.Distance(run.test_values);
      run.test_f1 = run.test_values.f1;
    }
  }
  return run;
}

void ExpectRunEqual(const ReferenceRun& expected, const RunResult& actual) {
  EXPECT_EQ(expected.success, actual.success);
  EXPECT_EQ(expected.selected, actual.selected);
  ExpectBitwiseEqual(expected.validation_values, actual.validation_values);
  ExpectBitwiseEqual(expected.test_values, actual.test_values);
  EXPECT_EQ(expected.best_distance_validation,
            actual.best_distance_validation);
  EXPECT_EQ(expected.best_distance_test, actual.best_distance_test);
  EXPECT_EQ(expected.test_f1, actual.test_f1);
}

class EngineGoldenTest : public ::testing::TestWithParam<ml::ModelKind> {};

// Per-mask outcomes match the reference pipeline exactly for every model
// kind, and a full search over the same mask sequence selects the
// byte-identical subset with byte-identical reported metric values.
TEST_P(EngineGoldenTest, EvaluationsAndSelectionMatchReference) {
  constraints::ConstraintSet constraints;
  constraints.min_f1 = 0.99;  // never satisfied: exercises the final
                              // re-measure of the best subset
  MlScenario scenario = MakeGoldenScenario(GetParam(), constraints);
  EngineOptions options;
  options.num_threads = 1;

  const auto masks = GoldenMasks(scenario.split.train.num_features());
  DfsEngine engine(scenario, options);
  for (const auto& mask : masks) {
    const fs::EvalOutcome actual = engine.Evaluate(mask);
    const ReferenceEvaluation ref = ReferenceEvaluate(scenario, options, mask);
    ExpectOutcomeEqual(ref.outcome, actual);
  }

  FixedListStrategy strategy(masks);
  const RunResult result = engine.Run(strategy);
  ExpectRunEqual(ReferenceSearch(scenario, options, masks), result);
}

// With an achievable threshold the search stops at the same first success.
TEST_P(EngineGoldenTest, FirstSuccessMatchesReference) {
  constraints::ConstraintSet constraints;
  constraints.min_f1 = 0.55;
  MlScenario scenario = MakeGoldenScenario(GetParam(), constraints);
  EngineOptions options;
  options.num_threads = 1;

  const auto masks = GoldenMasks(scenario.split.train.num_features());
  DfsEngine engine(scenario, options);
  FixedListStrategy strategy(masks);
  const RunResult result = engine.Run(strategy);
  ExpectRunEqual(ReferenceSearch(scenario, options, masks), result);
}

INSTANTIATE_TEST_SUITE_P(AllModels, EngineGoldenTest,
                         ::testing::Values(ml::ModelKind::kLogisticRegression,
                                           ml::ModelKind::kNaiveBayes,
                                           ml::ModelKind::kDecisionTree,
                                           ml::ModelKind::kLinearSvm),
                         [](const auto& info) {
                           return ml::ModelKindToString(info.param);
                         });

// The HPO grid loop reuses the scratch validation gather; the scores — and
// therefore the argmax hyperparameters — must not move.
TEST(EngineGoldenHpoTest, HpoEvaluationMatchesReference) {
  constraints::ConstraintSet constraints;
  constraints.min_f1 = 0.99;
  for (const auto kind : {ml::ModelKind::kLogisticRegression,
                          ml::ModelKind::kDecisionTree}) {
    MlScenario scenario = MakeGoldenScenario(kind, constraints);
    EngineOptions options;
    options.num_threads = 1;
    options.use_hpo = true;
    DfsEngine engine(scenario, options);
    const int n = scenario.split.train.num_features();
    for (const auto& mask :
         {fs::IndicesToMask(n, {0, 1}), fs::IndicesToMask(n, {1, 2, 3})}) {
      const fs::EvalOutcome actual = engine.Evaluate(mask);
      const ReferenceEvaluation ref =
          ReferenceEvaluate(scenario, options, mask);
      ExpectOutcomeEqual(ref.outcome, actual);
    }
  }
}

// Safety constraint: the robustness attack consumes the per-mask RNG
// stream through the span Attack kernel; values must match the reference
// attack on freshly gathered matrices draw for draw.
TEST(EngineGoldenSafetyTest, SafetyEvaluationMatchesReference) {
  constraints::ConstraintSet constraints;
  constraints.min_f1 = 0.55;
  constraints.min_safety = 0.5;
  constraints.min_equal_opportunity = 0.1;
  MlScenario scenario =
      MakeGoldenScenario(ml::ModelKind::kLogisticRegression, constraints);
  EngineOptions options;
  options.num_threads = 1;
  options.robustness.max_attacked_rows = 6;
  options.robustness.attack.max_queries = 60;
  DfsEngine engine(scenario, options);
  const int n = scenario.split.train.num_features();
  for (const auto& mask :
       {fs::IndicesToMask(n, {0, 1}), fs::IndicesToMask(n, {0, 1, 2}),
        fs::IndicesToMask(n, {2, 3})}) {
    const fs::EvalOutcome actual = engine.Evaluate(mask);
    const ReferenceEvaluation ref = ReferenceEvaluate(scenario, options, mask);
    ExpectOutcomeEqual(ref.outcome, actual);
  }
}

// Privacy constraint: the DP model's noise seed derives from the mask, so
// the scratch path must reproduce the exact same noisy model.
TEST(EngineGoldenPrivacyTest, DpEvaluationMatchesReference) {
  constraints::ConstraintSet constraints;
  constraints.min_f1 = 0.99;
  constraints.privacy_epsilon = 1.0;
  for (const auto kind : {ml::ModelKind::kLogisticRegression,
                          ml::ModelKind::kNaiveBayes,
                          ml::ModelKind::kDecisionTree}) {
    MlScenario scenario = MakeGoldenScenario(kind, constraints);
    EngineOptions options;
    options.num_threads = 1;
    DfsEngine engine(scenario, options);
    const int n = scenario.split.train.num_features();
    for (const auto& mask :
         {fs::IndicesToMask(n, {0, 1}), fs::IndicesToMask(n, {1, 3})}) {
      const fs::EvalOutcome actual = engine.Evaluate(mask);
      const ReferenceEvaluation ref =
          ReferenceEvaluate(scenario, options, mask);
      ExpectOutcomeEqual(ref.outcome, actual);
    }
  }
}

// --- f32 evaluation mode (DESIGN.md §2i) -------------------------------

// Reference for the f32 measurement path: the same f64-trained model
// applied to the f32-quantized split, widened back to f64. The engine's
// mixed-precision kernels widen each stored float exactly before
// accumulating in f64, so f32-mode metrics must equal this reference
// bitwise — the ONLY source of f32-mode drift is storage quantization.
constraints::MetricValues ReferenceMeasureF32(
    const MlScenario& scenario, const ml::Classifier& model,
    const std::vector<int>& features, const data::Dataset& split) {
  const int total = scenario.split.train.num_features();
  constraints::MetricValues values;
  values.selected_features = static_cast<int>(features.size());
  values.total_features = total;
  values.feature_fraction =
      static_cast<double>(features.size()) / std::max(1, total);
  linalg::Matrix32 x32;
  split.GatherInto(features, &x32);
  linalg::Matrix widened(x32.rows(), x32.cols());
  for (int r = 0; r < x32.rows(); ++r) {
    for (int c = 0; c < x32.cols(); ++c) {
      widened(r, c) = static_cast<double>(x32(r, c));
    }
  }
  const std::vector<int> predictions = model.PredictBatch(widened);
  values.f1 = metrics::F1Score(split.labels(), predictions);
  if (scenario.constraint_set.min_equal_opportunity.has_value()) {
    values.equal_opportunity =
        metrics::EqualOpportunity(split.labels(), predictions, split.groups());
  }
  return values;
}

TEST(EngineGoldenF32Test, F32EvaluationEqualsWidenedReference) {
  constraints::ConstraintSet constraints;
  constraints.min_f1 = 0.55;
  constraints.min_equal_opportunity = 0.1;
  for (const auto kind : {ml::ModelKind::kLogisticRegression,
                          ml::ModelKind::kNaiveBayes,
                          ml::ModelKind::kDecisionTree,
                          ml::ModelKind::kLinearSvm}) {
    MlScenario scenario = MakeGoldenScenario(kind, constraints);
    EngineOptions options;
    options.num_threads = 1;
    options.use_f32_eval = true;
    DfsEngine engine(scenario, options);
    const int n = scenario.split.train.num_features();
    for (const auto& mask :
         {fs::IndicesToMask(n, {0, 1}), fs::IndicesToMask(n, {1, 2, 3})}) {
      const fs::EvalOutcome actual = engine.Evaluate(mask);
      ASSERT_TRUE(actual.evaluated);
      const std::vector<int> features = fs::MaskToIndices(mask);
      // Training is f64 in both modes; only measurement quantizes.
      auto model = ReferenceTrain(scenario, options, features);
      ASSERT_TRUE(model.ok());
      const constraints::MetricValues val = ReferenceMeasureF32(
          scenario, **model, features, scenario.split.validation);
      ExpectBitwiseEqual(val, actual.validation);
      EXPECT_EQ(actual.satisfied_validation,
                scenario.constraint_set.Satisfied(val));
    }
  }
}

// Characterization: on unit-scale data the f32 quantization moves a
// prediction only when a decision margin sits within ~2^-24-scale noise of
// the threshold, so metric deltas stay small — but they are NOT zero by
// contract, which is why §2d binds f32 mode only to itself.
TEST(EngineGoldenF32Test, F32MetricsStayCloseToF64) {
  constraints::ConstraintSet constraints;
  constraints.min_f1 = 0.55;
  MlScenario scenario =
      MakeGoldenScenario(ml::ModelKind::kLogisticRegression, constraints);
  EngineOptions f64_options;
  f64_options.num_threads = 1;
  EngineOptions f32_options = f64_options;
  f32_options.use_f32_eval = true;
  DfsEngine f64_engine(scenario, f64_options);
  DfsEngine f32_engine(scenario, f32_options);
  const int n = scenario.split.train.num_features();
  for (const auto& mask : GoldenMasks(n)) {
    const fs::EvalOutcome a = f64_engine.Evaluate(mask);
    const fs::EvalOutcome b = f32_engine.Evaluate(mask);
    ASSERT_EQ(a.evaluated, b.evaluated);
    if (a.evaluated) EXPECT_NEAR(a.validation.f1, b.validation.f1, 0.06);
  }
}

// A safety constraint forces the f64 path: the robustness attack perturbs
// a gathered f64 matrix in place, so use_f32_eval must be ignored and the
// results must be bitwise identical to a plain f64 engine.
TEST(EngineGoldenF32Test, SafetyConstraintDisablesF32Mode) {
  constraints::ConstraintSet constraints;
  constraints.min_f1 = 0.55;
  constraints.min_safety = 0.5;
  MlScenario scenario =
      MakeGoldenScenario(ml::ModelKind::kLogisticRegression, constraints);
  EngineOptions f64_options;
  f64_options.num_threads = 1;
  f64_options.robustness.max_attacked_rows = 6;
  f64_options.robustness.attack.max_queries = 60;
  EngineOptions f32_options = f64_options;
  f32_options.use_f32_eval = true;
  DfsEngine f64_engine(scenario, f64_options);
  DfsEngine f32_engine(scenario, f32_options);
  const int n = scenario.split.train.num_features();
  for (const auto& mask :
       {fs::IndicesToMask(n, {0, 1}), fs::IndicesToMask(n, {2, 3})}) {
    ExpectOutcomeEqual(f64_engine.Evaluate(mask), f32_engine.Evaluate(mask));
  }
}

}  // namespace
}  // namespace dfs::core
