#include "core/experiment.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

namespace dfs::core {
namespace {

// A small but real pool configuration: 4 scenarios, tiny budgets, a strategy
// subset covering the main families. Shared across tests via a suite-level
// cache because running the pool trains real models.
ExperimentConfig SmallConfig() {
  ExperimentConfig config;
  config.num_scenarios = 4;
  config.use_hpo = false;
  config.seed = 77;
  config.row_scale = 0.08;
  config.sampler.min_search_seconds = 0.02;
  config.sampler.max_search_seconds = 0.08;
  config.strategies = {fs::StrategyId::kOriginalFeatureSet,
                       fs::StrategyId::kSfs, fs::StrategyId::kTpeChi2,
                       fs::StrategyId::kSimulatedAnnealing};
  return config;
}

const ExperimentPool& SmallPool() {
  static const ExperimentPool& pool = *new ExperimentPool([] {
    auto result = ExperimentPool::Run(SmallConfig(), /*verbose=*/false);
    DFS_CHECK(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }());
  return pool;
}

TEST(ExperimentPoolTest, RunsRequestedScenarioCount) {
  const auto& records = SmallPool().records();
  ASSERT_EQ(records.size(), 4u);
  for (const auto& record : records) {
    EXPECT_EQ(record.outcomes.size(), 4u);
    EXPECT_GT(record.rows, 0);
    EXPECT_GT(record.features, 0);
    EXPECT_FALSE(record.dataset_name.empty());
  }
}

TEST(ExperimentPoolTest, OutcomesCarrySearchTimes) {
  for (const auto& record : SmallPool().records()) {
    for (const auto& outcome : record.outcomes) {
      EXPECT_GE(outcome.seconds, 0.0);
      if (outcome.success) {
        // Successful runs finish within (roughly) the sampled budget.
        EXPECT_LE(outcome.seconds,
                  record.constraint_set.max_search_seconds + 0.5);
      }
    }
  }
}

TEST(ExperimentPoolTest, OutcomeLookupByStrategy) {
  const auto& record = SmallPool().records().front();
  EXPECT_NE(record.OutcomeOf(fs::StrategyId::kSfs), nullptr);
  EXPECT_EQ(record.OutcomeOf(fs::StrategyId::kNsga2), nullptr);
}

TEST(ExperimentPoolTest, DeterministicAcrossRuns) {
  auto again = ExperimentPool::Run(SmallConfig(), false);
  ASSERT_TRUE(again.ok());
  const auto& a = SmallPool().records();
  const auto& b = again->records();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].dataset_name, b[i].dataset_name);
    EXPECT_EQ(a[i].model, b[i].model);
    for (size_t j = 0; j < a[i].outcomes.size(); ++j) {
      // Success is deterministic modulo wall-clock deadline jitter; the
      // sampled scenario itself must be identical.
      EXPECT_EQ(a[i].outcomes[j].id, b[i].outcomes[j].id);
    }
  }
}

TEST(ExperimentPoolTest, CsvRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "dfs_pool_test.csv").string();
  ASSERT_TRUE(SmallPool().SaveCsv(path).ok());
  auto loaded = ExperimentPool::LoadCsv(path, SmallConfig());
  ASSERT_TRUE(loaded.ok());
  const auto& a = SmallPool().records();
  const auto& b = loaded->records();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].dataset_name, b[i].dataset_name);
    EXPECT_EQ(a[i].model, b[i].model);
    EXPECT_EQ(a[i].constraint_set.min_equal_opportunity.has_value(),
              b[i].constraint_set.min_equal_opportunity.has_value());
    ASSERT_EQ(a[i].outcomes.size(), b[i].outcomes.size());
    for (size_t j = 0; j < a[i].outcomes.size(); ++j) {
      EXPECT_EQ(a[i].outcomes[j].success, b[i].outcomes[j].success);
      EXPECT_NEAR(a[i].outcomes[j].distance_validation,
                  b[i].outcomes[j].distance_validation, 1e-6);
    }
  }
  std::remove(path.c_str());
}

TEST(ExperimentPoolTest, LoadRejectsDifferentConfig) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "dfs_pool_test2.csv")
          .string();
  ASSERT_TRUE(SmallPool().SaveCsv(path).ok());
  ExperimentConfig other = SmallConfig();
  other.seed = 78;
  EXPECT_FALSE(ExperimentPool::LoadCsv(path, other).ok());
  std::remove(path.c_str());
}

TEST(ExperimentPoolTest, RunOrLoadUsesCache) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "dfs_pool_cache.csv")
          .string();
  std::remove(path.c_str());
  auto first = ExperimentPool::RunOrLoad(SmallConfig(), path, false);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(std::filesystem::exists(path));
  // Second call loads: must return identical outcome bits (wall-clock
  // reruns could differ, a cache load cannot).
  auto second = ExperimentPool::RunOrLoad(SmallConfig(), path, false);
  ASSERT_TRUE(second.ok());
  for (size_t i = 0; i < first->records().size(); ++i) {
    for (size_t j = 0; j < first->records()[i].outcomes.size(); ++j) {
      EXPECT_EQ(first->records()[i].outcomes[j].success,
                second->records()[i].outcomes[j].success);
      EXPECT_NEAR(first->records()[i].outcomes[j].seconds,
                  second->records()[i].outcomes[j].seconds, 1e-6);
    }
  }
  std::remove(path.c_str());
}

TEST(ExperimentConfigTest, HashSensitiveToEveryKnob) {
  const ExperimentConfig base = SmallConfig();
  ExperimentConfig changed = base;
  changed.num_scenarios = 5;
  EXPECT_NE(base.Hash(), changed.Hash());
  changed = base;
  changed.use_hpo = true;
  EXPECT_NE(base.Hash(), changed.Hash());
  changed = base;
  changed.utility_mode = true;
  EXPECT_NE(base.Hash(), changed.Hash());
  changed = base;
  changed.time_scale = 2.0;
  EXPECT_NE(base.Hash(), changed.Hash());
  changed = base;
  changed.strategies.pop_back();
  EXPECT_NE(base.Hash(), changed.Hash());
  EXPECT_EQ(base.Hash(), SmallConfig().Hash());
}

TEST(EnvironmentOverridesTest, ReadsVariables) {
  ExperimentConfig config = SmallConfig();
  setenv("DFS_SCENARIOS", "9", 1);
  setenv("DFS_TIME_SCALE", "2.5", 1);
  setenv("DFS_DATA_SCALE", "0.5", 1);
  setenv("DFS_SEED", "31337", 1);
  ApplyEnvironmentOverrides(config);
  EXPECT_EQ(config.num_scenarios, 9);
  EXPECT_DOUBLE_EQ(config.time_scale, 2.5);
  EXPECT_DOUBLE_EQ(config.row_scale, 0.5);
  EXPECT_EQ(config.seed, 31337u);
  unsetenv("DFS_SCENARIOS");
  unsetenv("DFS_TIME_SCALE");
  unsetenv("DFS_DATA_SCALE");
  unsetenv("DFS_SEED");
  ExperimentConfig untouched = SmallConfig();
  ApplyEnvironmentOverrides(untouched);
  EXPECT_EQ(untouched.num_scenarios, SmallConfig().num_scenarios);
}

}  // namespace
}  // namespace dfs::core
