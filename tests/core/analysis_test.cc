#include "core/analysis.h"

#include <gtest/gtest.h>

namespace dfs::core {
namespace {

// Hand-built records: 2 datasets ("A", "B"), 3 strategies.
// Dataset A: 2 satisfiable scenarios; dataset B: 1 satisfiable + 1 that no
// strategy solves (still counted as unsatisfiable).
std::vector<ScenarioRecord> MakeRecords() {
  auto outcome = [](fs::StrategyId id, bool success, double seconds,
                    double distance = 0.5, double f1 = 0.5) {
    StrategyOutcome o;
    o.id = id;
    o.success = success;
    o.seconds = seconds;
    o.distance_validation = success ? 0.0 : distance;
    o.distance_test = success ? 0.0 : distance + 0.1;
    o.test_f1 = f1;
    return o;
  };
  const auto sfs = fs::StrategyId::kSfs;
  const auto chi = fs::StrategyId::kTpeChi2;
  const auto sa = fs::StrategyId::kSimulatedAnnealing;

  std::vector<ScenarioRecord> records(4);
  // A#0: sfs fastest (0.1), chi solves slower, sa fails.
  records[0].scenario_id = 0;
  records[0].dataset_name = "A";
  records[0].model = ml::ModelKind::kLogisticRegression;
  records[0].outcomes = {outcome(sfs, true, 0.1, 0, 0.8),
                         outcome(chi, true, 0.3, 0, 0.9),
                         outcome(sa, false, 0.5, 0.4, 0.6)};
  // A#1: only chi solves. EO constraint active.
  records[1].scenario_id = 1;
  records[1].dataset_name = "A";
  records[1].model = ml::ModelKind::kNaiveBayes;
  records[1].constraint_set.min_equal_opportunity = 0.9;
  records[1].outcomes = {outcome(sfs, false, 0.2, 0.6, 0.5),
                         outcome(chi, true, 0.2, 0, 0.7),
                         outcome(sa, false, 0.2, 0.8, 0.4)};
  // B#2: sa fastest, sfs ties chi at slower time.
  records[2].scenario_id = 2;
  records[2].dataset_name = "B";
  records[2].model = ml::ModelKind::kLogisticRegression;
  records[2].outcomes = {outcome(sfs, true, 0.4, 0, 0.9),
                         outcome(chi, true, 0.4, 0, 0.85),
                         outcome(sa, true, 0.1, 0, 0.95)};
  // B#3: nobody solves -> unsatisfiable, excluded from coverage.
  records[3].scenario_id = 3;
  records[3].dataset_name = "B";
  records[3].model = ml::ModelKind::kDecisionTree;
  records[3].outcomes = {outcome(sfs, false, 0.2, 0.9, 0.2),
                         outcome(chi, false, 0.2, 0.9, 0.3),
                         outcome(sa, false, 0.2, 0.9, 0.1)};
  return records;
}

TEST(AnalysisTest, MeanStdBasics) {
  const MeanStd stats = ComputeMeanStd({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(stats.mean, 2.0);
  EXPECT_DOUBLE_EQ(stats.stddev, 1.0);
  EXPECT_DOUBLE_EQ(ComputeMeanStd({}).mean, 0.0);
}

TEST(AnalysisTest, CoverageByDatasetExcludesUnsatisfiable) {
  const auto records = MakeRecords();
  const auto chi_coverage =
      CoverageByDataset(records, fs::StrategyId::kTpeChi2);
  ASSERT_EQ(chi_coverage.size(), 2u);
  EXPECT_DOUBLE_EQ(chi_coverage.at("A"), 1.0);   // 2/2
  EXPECT_DOUBLE_EQ(chi_coverage.at("B"), 1.0);   // 1/1 satisfiable
  const auto sfs_coverage = CoverageByDataset(records, fs::StrategyId::kSfs);
  EXPECT_DOUBLE_EQ(sfs_coverage.at("A"), 0.5);
}

TEST(AnalysisTest, CoverageStatsAggregatesAcrossDatasets) {
  const auto records = MakeRecords();
  const MeanStd sfs = CoverageStats(records, fs::StrategyId::kSfs);
  EXPECT_DOUBLE_EQ(sfs.mean, 0.75);  // (0.5 + 1.0) / 2
  const MeanStd chi = CoverageStats(records, fs::StrategyId::kTpeChi2);
  EXPECT_DOUBLE_EQ(chi.mean, 1.0);
  EXPECT_DOUBLE_EQ(chi.stddev, 0.0);
}

TEST(AnalysisTest, FastestStatsCreditsStrictWinners) {
  const auto records = MakeRecords();
  // sfs fastest on A#0 only -> A: 1/2, B: 0/1.
  const MeanStd sfs = FastestStats(records, fs::StrategyId::kSfs);
  EXPECT_DOUBLE_EQ(sfs.mean, 0.25);
  // sa fastest on B#2 -> A: 0/2, B: 1/1.
  const MeanStd sa =
      FastestStats(records, fs::StrategyId::kSimulatedAnnealing);
  EXPECT_DOUBLE_EQ(sa.mean, 0.5);
}

TEST(AnalysisTest, FilteredCoverageByConstraint) {
  const auto records = MakeRecords();
  const auto has_eo = [](const ScenarioRecord& record) {
    return record.constraint_set.min_equal_opportunity.has_value();
  };
  EXPECT_DOUBLE_EQ(
      FilteredCoverage(records, fs::StrategyId::kTpeChi2, has_eo), 1.0);
  EXPECT_DOUBLE_EQ(FilteredCoverage(records, fs::StrategyId::kSfs, has_eo),
                   0.0);
}

TEST(AnalysisTest, FilteredCoverageByModel) {
  const auto records = MakeRecords();
  const auto is_lr = [](const ScenarioRecord& record) {
    return record.model == ml::ModelKind::kLogisticRegression;
  };
  EXPECT_DOUBLE_EQ(FilteredCoverage(records, fs::StrategyId::kSfs, is_lr),
                   1.0);  // A#0 and B#2 both solved by sfs
}

TEST(AnalysisTest, FailureDistancesOnlyFailedSatisfiableCases) {
  const auto records = MakeRecords();
  const FailureDistances sfs =
      FailureDistanceStats(records, fs::StrategyId::kSfs);
  EXPECT_EQ(sfs.failed_cases, 1);  // A#1 (B#3 is unsatisfiable)
  EXPECT_DOUBLE_EQ(sfs.validation.mean, 0.6);
  EXPECT_DOUBLE_EQ(sfs.test.mean, 0.7);
  const FailureDistances chi =
      FailureDistanceStats(records, fs::StrategyId::kTpeChi2);
  EXPECT_EQ(chi.failed_cases, 0);
}

TEST(AnalysisTest, NormalizedF1IsOneForAlwaysBest) {
  // chi has the best F1 on A#1 only; compute by hand for sfs:
  // A#0: 0.8/0.9, A#1: 0.5/0.7 -> A mean ~0.8016
  // B#2: 0.9/0.95, B#3: 0.2/0.3 -> B mean ~0.8070
  const auto records = MakeRecords();
  const MeanStd sfs = NormalizedF1Stats(records, fs::StrategyId::kSfs);
  EXPECT_NEAR(sfs.mean, 0.5 * ((0.8 / 0.9 + 0.5 / 0.7) / 2.0 +
                               (0.9 / 0.95 + 0.2 / 0.3) / 2.0),
              1e-9);
}

TEST(AnalysisTest, GreedyCoverageCombinationReachesFullCoverage) {
  const auto records = MakeRecords();
  const auto steps = GreedyCoverageCombination(
      records, {fs::StrategyId::kSfs, fs::StrategyId::kTpeChi2,
                fs::StrategyId::kSimulatedAnnealing});
  ASSERT_FALSE(steps.empty());
  // chi alone already covers every satisfiable scenario here.
  EXPECT_EQ(steps.front().added, fs::StrategyId::kTpeChi2);
  EXPECT_DOUBLE_EQ(steps.front().achieved.mean, 1.0);
  EXPECT_EQ(steps.size(), 1u);  // stops at full coverage
}

TEST(AnalysisTest, GreedyFastestCombinationAddsComplementaryStrategies) {
  const auto records = MakeRecords();
  const auto steps = GreedyFastestCombination(
      records, {fs::StrategyId::kSfs, fs::StrategyId::kTpeChi2,
                fs::StrategyId::kSimulatedAnnealing});
  ASSERT_GE(steps.size(), 2u);
  // No single strategy is fastest everywhere; the pool must grow.
  EXPECT_LT(steps.front().achieved.mean, 1.0);
  EXPECT_GT(steps.back().achieved.mean, steps.front().achieved.mean);
}

}  // namespace
}  // namespace dfs::core
