#include "core/scenario.h"

#include <gtest/gtest.h>

#include <set>

#include "core/scenario_sampler.h"
#include "testing/test_util.h"

namespace dfs::core {
namespace {

TEST(ScenarioTest, MakeScenarioSplits311) {
  Rng rng(401);
  auto scenario = MakeScenario(testing::MakeLinearDataset(500, 2, 400),
                               ml::ModelKind::kNaiveBayes,
                               constraints::ConstraintSet(), rng);
  ASSERT_TRUE(scenario.ok());
  EXPECT_EQ(scenario->dataset_name, "linear");
  EXPECT_EQ(scenario->model, ml::ModelKind::kNaiveBayes);
  EXPECT_NEAR(scenario->split.train.num_rows(), 300, 6);
  EXPECT_NEAR(scenario->split.validation.num_rows(), 100, 6);
  EXPECT_NEAR(scenario->split.test.num_rows(), 100, 6);
}

TEST(ScenarioTest, TinyDatasetFailsToSplit) {
  auto dataset = data::Dataset::Create("t", {"x"}, {{0.1, 0.9}}, {0, 1},
                                       {0, 0});
  ASSERT_TRUE(dataset.ok());
  Rng rng(402);
  EXPECT_FALSE(MakeScenario(*dataset, ml::ModelKind::kDecisionTree,
                            constraints::ConstraintSet(), rng)
                   .ok());
}

TEST(SamplerTest, MandatoryConstraintsAlwaysPresent) {
  Rng rng(403);
  SamplerOptions options;
  for (int i = 0; i < 200; ++i) {
    const SampledScenario scenario = SampleScenario(19, options, rng);
    EXPECT_GE(scenario.constraint_set.min_f1, 0.5);
    EXPECT_LE(scenario.constraint_set.min_f1, 1.0);
    EXPECT_GE(scenario.constraint_set.max_search_seconds,
              options.min_search_seconds);
    EXPECT_LE(scenario.constraint_set.max_search_seconds,
              options.max_search_seconds);
    EXPECT_GE(scenario.dataset_index, 0);
    EXPECT_LT(scenario.dataset_index, 19);
  }
}

TEST(SamplerTest, OptionalConstraintsAppearRoughlyHalfTheTime) {
  Rng rng(404);
  SamplerOptions options;
  int eo = 0, safety = 0, size = 0, privacy = 0;
  const int trials = 1000;
  for (int i = 0; i < trials; ++i) {
    const SampledScenario scenario = SampleScenario(19, options, rng);
    eo += scenario.constraint_set.min_equal_opportunity.has_value();
    safety += scenario.constraint_set.min_safety.has_value();
    size += scenario.constraint_set.max_feature_fraction.has_value();
    privacy += scenario.constraint_set.privacy_epsilon.has_value();
  }
  for (int count : {eo, safety, size, privacy}) {
    EXPECT_NEAR(count / static_cast<double>(trials), 0.5, 0.06);
  }
}

TEST(SamplerTest, OptionalThresholdsInPaperRanges) {
  Rng rng(405);
  SamplerOptions options;
  for (int i = 0; i < 300; ++i) {
    const SampledScenario scenario = SampleScenario(19, options, rng);
    if (scenario.constraint_set.min_equal_opportunity) {
      EXPECT_GE(*scenario.constraint_set.min_equal_opportunity, 0.8);
      EXPECT_LE(*scenario.constraint_set.min_equal_opportunity, 1.0);
    }
    if (scenario.constraint_set.min_safety) {
      EXPECT_GE(*scenario.constraint_set.min_safety, 0.8);
    }
    if (scenario.constraint_set.max_feature_fraction) {
      EXPECT_GE(*scenario.constraint_set.max_feature_fraction, 0.0);
      EXPECT_LE(*scenario.constraint_set.max_feature_fraction, 1.0);
    }
    if (scenario.constraint_set.privacy_epsilon) {
      EXPECT_GT(*scenario.constraint_set.privacy_epsilon, 0.0);
    }
  }
}

TEST(SamplerTest, AllModelsAndDatasetsSampled) {
  Rng rng(406);
  SamplerOptions options;
  std::set<ml::ModelKind> models;
  std::set<int> datasets;
  for (int i = 0; i < 500; ++i) {
    const SampledScenario scenario = SampleScenario(19, options, rng);
    models.insert(scenario.model);
    datasets.insert(scenario.dataset_index);
  }
  EXPECT_EQ(models.size(), 3u);  // LR, DT, NB (SVM is Table-7 only)
  EXPECT_GT(datasets.size(), 15u);
}

TEST(SamplerTest, PrivacyEpsilonIsLogNormalShaped) {
  Rng rng(407);
  SamplerOptions options;
  options.optional_probability = 1.0;
  int below_one = 0, total = 0;
  for (int i = 0; i < 2000; ++i) {
    const SampledScenario scenario = SampleScenario(19, options, rng);
    ASSERT_TRUE(scenario.constraint_set.privacy_epsilon.has_value());
    below_one += *scenario.constraint_set.privacy_epsilon < 1.0;
    ++total;
  }
  // LogNormal(0, 1): median exactly 1.
  EXPECT_NEAR(below_one / static_cast<double>(total), 0.5, 0.05);
}

}  // namespace
}  // namespace dfs::core
