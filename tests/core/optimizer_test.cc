#include "core/optimizer.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace dfs::core {
namespace {

TEST(FeaturizeTest, VectorMatchesDeclaredNames) {
  const data::Dataset dataset = testing::MakeLinearDataset(200, 3, 501);
  constraints::ConstraintSet set;
  set.min_f1 = 0.7;
  set.min_equal_opportunity = 0.9;
  auto features = FeaturizeScenario(
      dataset, ml::ModelKind::kLogisticRegression, set, OptimizerOptions());
  ASSERT_TRUE(features.ok());
  EXPECT_EQ(features->values.size(), ScenarioFeatures::Names().size());
}

TEST(FeaturizeTest, ModelOneHotIsExclusive) {
  const data::Dataset dataset = testing::MakeLinearDataset(150, 1, 502);
  constraints::ConstraintSet set;
  for (ml::ModelKind model : {ml::ModelKind::kLogisticRegression,
                              ml::ModelKind::kNaiveBayes,
                              ml::ModelKind::kDecisionTree}) {
    auto features =
        FeaturizeScenario(dataset, model, set, OptimizerOptions());
    ASSERT_TRUE(features.ok());
    // Indices 2..4 are the one-hot block.
    const double sum = features->values[2] + features->values[3] +
                       features->values[4];
    EXPECT_DOUBLE_EQ(sum, 1.0);
  }
}

TEST(FeaturizeTest, ConstraintThresholdsEncodedWithDefaults) {
  const data::Dataset dataset = testing::MakeLinearDataset(150, 1, 503);
  constraints::ConstraintSet set;
  set.min_f1 = 0.66;
  auto features = FeaturizeScenario(dataset, ml::ModelKind::kNaiveBayes, set,
                                    OptimizerOptions());
  ASSERT_TRUE(features.ok());
  const auto names = ScenarioFeatures::Names();
  auto value_of = [&](const std::string& name) {
    for (size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) return features->values[i];
    }
    ADD_FAILURE() << "missing feature " << name;
    return 0.0;
  };
  EXPECT_DOUBLE_EQ(value_of("min_f1"), 0.66);
  EXPECT_DOUBLE_EQ(value_of("max_feature_fraction"), 1.0);  // default
  EXPECT_DOUBLE_EQ(value_of("min_eo"), 0.0);                // default
  EXPECT_DOUBLE_EQ(value_of("has_privacy"), 0.0);
}

TEST(FeaturizeTest, LandmarkSlackTracksThresholdHardness) {
  const data::Dataset dataset = testing::MakeLinearDataset(300, 2, 504);
  constraints::ConstraintSet easy, hard;
  easy.min_f1 = 0.5;
  hard.min_f1 = 0.99;
  OptimizerOptions options;
  auto easy_features = FeaturizeScenario(
      dataset, ml::ModelKind::kLogisticRegression, easy, options);
  auto hard_features = FeaturizeScenario(
      dataset, ml::ModelKind::kLogisticRegression, hard, options);
  ASSERT_TRUE(easy_features.ok());
  ASSERT_TRUE(hard_features.ok());
  const size_t slack_index = 12;  // landmark_f1_slack
  ASSERT_EQ(ScenarioFeatures::Names()[slack_index], "landmark_f1_slack");
  EXPECT_GT(easy_features->values[slack_index],
            hard_features->values[slack_index]);
}

DfsOptimizer::TrainingExample MakeExample(double rows_signal, bool sfs_wins,
                                          uint64_t seed) {
  // Synthetic meta-learning task: SFS succeeds iff rows_signal > 0.5,
  // chi2 succeeds iff rows_signal <= 0.5.
  Rng rng(seed);
  DfsOptimizer::TrainingExample example;
  example.features.values.assign(ScenarioFeatures::Names().size(), 0.0);
  example.features.values[0] = rows_signal + 0.02 * rng.Normal();
  example.features.values[5] = rng.Uniform();  // irrelevant noise
  example.outcomes[fs::StrategyId::kSfs] = sfs_wins;
  example.outcomes[fs::StrategyId::kTpeChi2] = !sfs_wins;
  return example;
}

TEST(DfsOptimizerTest, LearnsWhichStrategyFitsWhichScenario) {
  std::vector<DfsOptimizer::TrainingExample> examples;
  Rng rng(505);
  for (int i = 0; i < 120; ++i) {
    const double signal = rng.Uniform();
    examples.push_back(MakeExample(signal, signal > 0.5, 506 + i));
  }
  DfsOptimizer optimizer;
  ASSERT_TRUE(optimizer
                  .Train(examples, {fs::StrategyId::kSfs,
                                    fs::StrategyId::kTpeChi2})
                  .ok());
  // Query far on each side of the boundary.
  int correct = 0;
  for (double signal : {0.05, 0.1, 0.15, 0.85, 0.9, 0.95}) {
    ScenarioFeatures query;
    query.values.assign(ScenarioFeatures::Names().size(), 0.0);
    query.values[0] = signal;
    auto chosen = optimizer.Choose(query);
    ASSERT_TRUE(chosen.ok());
    const fs::StrategyId expected =
        signal > 0.5 ? fs::StrategyId::kSfs : fs::StrategyId::kTpeChi2;
    correct += *chosen == expected ? 1 : 0;
  }
  EXPECT_GE(correct, 5);
}

TEST(DfsOptimizerTest, ProbabilitiesInUnitInterval) {
  std::vector<DfsOptimizer::TrainingExample> examples;
  Rng rng(507);
  for (int i = 0; i < 40; ++i) {
    examples.push_back(MakeExample(rng.Uniform(), rng.Bernoulli(0.5), i));
  }
  DfsOptimizer optimizer;
  ASSERT_TRUE(optimizer
                  .Train(examples,
                         {fs::StrategyId::kSfs, fs::StrategyId::kTpeChi2})
                  .ok());
  ScenarioFeatures query;
  query.values.assign(ScenarioFeatures::Names().size(), 0.3);
  auto probabilities = optimizer.PredictProbabilities(query);
  ASSERT_TRUE(probabilities.ok());
  for (const auto& [id, p] : *probabilities) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(DfsOptimizerTest, DegenerateLabelsGetConstantProbability) {
  std::vector<DfsOptimizer::TrainingExample> examples;
  for (int i = 0; i < 20; ++i) {
    auto example = MakeExample(0.5, true, i);
    example.outcomes[fs::StrategyId::kSfs] = true;        // always succeeds
    example.outcomes[fs::StrategyId::kTpeChi2] = false;   // never succeeds
    examples.push_back(example);
  }
  DfsOptimizer optimizer;
  ASSERT_TRUE(optimizer
                  .Train(examples,
                         {fs::StrategyId::kSfs, fs::StrategyId::kTpeChi2})
                  .ok());
  ScenarioFeatures query;
  query.values.assign(ScenarioFeatures::Names().size(), 0.5);
  auto probabilities = optimizer.PredictProbabilities(query);
  ASSERT_TRUE(probabilities.ok());
  EXPECT_DOUBLE_EQ(probabilities->at(fs::StrategyId::kSfs), 1.0);
  EXPECT_DOUBLE_EQ(probabilities->at(fs::StrategyId::kTpeChi2), 0.0);
  auto chosen = optimizer.Choose(query);
  ASSERT_TRUE(chosen.ok());
  EXPECT_EQ(*chosen, fs::StrategyId::kSfs);
}

TEST(DfsOptimizerTest, UntrainedRejectsQueries) {
  DfsOptimizer optimizer;
  ScenarioFeatures query;
  query.values.assign(ScenarioFeatures::Names().size(), 0.0);
  EXPECT_FALSE(optimizer.Choose(query).ok());
  EXPECT_FALSE(optimizer.Train({}, {fs::StrategyId::kSfs}).ok());
}

}  // namespace
}  // namespace dfs::core
