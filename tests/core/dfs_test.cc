#include "core/dfs.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace dfs::core {
namespace {

constraints::ConstraintSet EasySet() {
  return constraints::ConstraintSetBuilder()
      .MinF1(0.6)
      .MaxSearchSeconds(5.0)
      .Build()
      .value();
}

TEST(DfsFacadeTest, SelectReturnsSatisfyingSubsetWithNames) {
  DeclarativeFeatureSelection dfs(testing::MakeLinearDataset(300, 3, 601));
  dfs.SetModel(ml::ModelKind::kLogisticRegression).SetConstraints(EasySet());
  auto result = dfs.Select(fs::StrategyId::kSffs);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->success);
  EXPECT_EQ(result->strategy, "SFFS(NR)");
  ASSERT_FALSE(result->features.empty());
  ASSERT_EQ(result->features.size(), result->feature_names.size());
  // Forward selection on this dataset picks a signal feature first.
  EXPECT_TRUE(result->feature_names[0] == "signal_a" ||
              result->feature_names[0] == "signal_b")
      << result->feature_names[0];
  EXPECT_GE(result->test_values.f1, 0.6);
}

TEST(DfsFacadeTest, FairnessConstraintPrunesNothingWhenAlreadyFair) {
  DeclarativeFeatureSelection dfs(testing::MakeLinearDataset(300, 2, 602));
  dfs.SetConstraints(constraints::ConstraintSetBuilder()
                         .MinF1(0.55)
                         .MinEqualOpportunity(0.7)
                         .MaxSearchSeconds(5.0)
                         .Build()
                         .value());
  auto result = dfs.Select(fs::StrategyId::kSfs);
  ASSERT_TRUE(result.ok());
  if (result->success) {
    EXPECT_GE(result->validation_values.equal_opportunity, 0.7);
  }
}

TEST(DfsFacadeTest, ImpossibleConstraintsReportFailureWithClosestSubset) {
  DeclarativeFeatureSelection dfs(testing::MakeLinearDataset(200, 2, 603));
  dfs.SetConstraints(constraints::ConstraintSetBuilder()
                         .MinF1(0.999)
                         .MaxSearchSeconds(0.2)
                         .Build()
                         .value());
  auto result = dfs.Select(fs::StrategyId::kTpeChi2);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->success);
  EXPECT_FALSE(result->features.empty());  // closest subset still reported
}

TEST(DfsFacadeTest, UtilityModeReturnsHighF1Subset) {
  DeclarativeFeatureSelection dfs(testing::MakeLinearDataset(250, 2, 604));
  dfs.SetConstraints(constraints::ConstraintSetBuilder()
                         .MinF1(0.4)
                         .MaxSearchSeconds(0.4)
                         .Build()
                         .value())
      .MaximizeUtility(true);
  auto result = dfs.Select(fs::StrategyId::kSffs);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->success);
  EXPECT_GT(result->test_values.f1, 0.6);  // well above the 0.4 floor
}

TEST(DfsFacadeTest, SelectParallelPicksASuccess) {
  DeclarativeFeatureSelection dfs(testing::MakeLinearDataset(250, 3, 605));
  dfs.SetConstraints(EasySet());
  auto result = dfs.SelectParallel(
      {fs::StrategyId::kSfs, fs::StrategyId::kTpeChi2,
       fs::StrategyId::kSimulatedAnnealing},
      /*num_threads=*/2);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->success);
  EXPECT_FALSE(result->strategy.empty());
}

TEST(DfsFacadeTest, SelectParallelRejectsEmptyPortfolio) {
  DeclarativeFeatureSelection dfs(testing::MakeLinearDataset(100, 1, 606));
  dfs.SetConstraints(EasySet());
  EXPECT_FALSE(dfs.SelectParallel({}, 2).ok());
}

TEST(DfsFacadeTest, SelectModelAndFeaturesFindsAModel) {
  DeclarativeFeatureSelection dfs(testing::MakeLinearDataset(250, 2, 608));
  dfs.SetConstraints(EasySet());
  auto result = dfs.SelectModelAndFeatures(
      {ml::ModelKind::kNaiveBayes, ml::ModelKind::kDecisionTree,
       ml::ModelKind::kLogisticRegression},
      fs::StrategyId::kSfs);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->success);
  EXPECT_FALSE(result->model.empty());
  EXPECT_GE(result->test_values.f1, 0.6);
}

TEST(DfsFacadeTest, SelectModelAndFeaturesFallsBackToClosest) {
  DeclarativeFeatureSelection dfs(testing::MakeLinearDataset(150, 2, 609));
  dfs.SetConstraints(constraints::ConstraintSetBuilder()
                         .MinF1(0.999)  // unsatisfiable
                         .MaxSearchSeconds(0.3)
                         .Build()
                         .value());
  auto result = dfs.SelectModelAndFeatures(
      {ml::ModelKind::kNaiveBayes, ml::ModelKind::kDecisionTree},
      fs::StrategyId::kTpeChi2);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->success);
  EXPECT_FALSE(result->features.empty());
}

TEST(DfsFacadeTest, SelectModelAndFeaturesRejectsEmptyCandidates) {
  DeclarativeFeatureSelection dfs(testing::MakeLinearDataset(100, 1, 610));
  dfs.SetConstraints(EasySet());
  EXPECT_FALSE(dfs.SelectModelAndFeatures({}, fs::StrategyId::kSfs).ok());
}

TEST(DfsFacadeTest, SelectWithOptimizerUsesChoice) {
  // Optimizer trained so SFFS always succeeds: the facade must route there.
  std::vector<DfsOptimizer::TrainingExample> examples;
  for (int i = 0; i < 10; ++i) {
    DfsOptimizer::TrainingExample example;
    example.features.values.assign(ScenarioFeatures::Names().size(),
                                   0.1 * i);
    example.outcomes[fs::StrategyId::kSffs] = true;
    example.outcomes[fs::StrategyId::kSbs] = false;
    examples.push_back(example);
  }
  DfsOptimizer optimizer;
  ASSERT_TRUE(optimizer
                  .Train(examples,
                         {fs::StrategyId::kSffs, fs::StrategyId::kSbs})
                  .ok());
  DeclarativeFeatureSelection dfs(testing::MakeLinearDataset(250, 2, 607));
  dfs.SetConstraints(EasySet());
  auto result = dfs.SelectWithOptimizer(optimizer);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->strategy, "SFFS(NR)");
  EXPECT_TRUE(result->success);
}

}  // namespace
}  // namespace dfs::core
