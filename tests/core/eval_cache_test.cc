// Shared-eval-cache tests (ISSUE 7): spill/restore round-trip
// byte-identity, rejection of corrupt/truncated/stale spills, the
// membership filter's false-positive fallthrough contract, the OwnerGuard
// dead-owner regression, registry persistence, engine L2 integration, and
// a concurrent lookup/insert/spill churn test for the TSan fleet.

#include "core/eval_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/scenario.h"
#include "core/suite_version.h"
#include "fs/registry.h"
#include "testing/test_util.h"

namespace dfs::core {
namespace {

// Unique mask per id over 64 features: the id's bits select among
// features 1..32; feature 0 tags the resident population so absent-mask
// probes are guaranteed disjoint from it.
fs::FeatureMask MaskFor(uint32_t id, bool resident = true) {
  fs::FeatureMask mask(64, 0);
  if (resident) mask[0] = 1;
  for (int b = 0; b < 32; ++b) {
    if ((id >> b) & 1u) mask[b + 1] = 1;
  }
  return mask;
}

// Varied, exactly-representable-and-not field values so round-trip
// comparisons are meaningful bit-for-bit.
fs::EvalOutcome OutcomeFor(uint32_t id) {
  fs::EvalOutcome outcome;
  outcome.evaluated = true;
  outcome.seconds = 0.1 + id / 3.0;
  outcome.distance = id == 0 ? 0.0 : 1.0 / id;
  outcome.objective = -static_cast<double>(id) / 7.0;
  outcome.satisfied_validation = (id % 2) == 0;
  outcome.success = (id % 3) == 0;
  outcome.validation.f1 = id / 1000.0;
  outcome.validation.equal_opportunity = 1.0 - id / 2000.0;
  outcome.validation.safety = 0.5 + id / 4000.0;
  outcome.validation.feature_fraction = id / 64.0;
  outcome.validation.selected_features = static_cast<int>(id % 64);
  outcome.validation.total_features = 64;
  return outcome;
}

void ExpectOutcomeEq(const fs::EvalOutcome& want, const fs::EvalOutcome& got,
                     uint32_t id) {
  EXPECT_EQ(want.evaluated, got.evaluated) << "entry " << id;
  EXPECT_EQ(want.seconds, got.seconds) << "entry " << id;
  EXPECT_EQ(want.distance, got.distance) << "entry " << id;
  EXPECT_EQ(want.objective, got.objective) << "entry " << id;
  EXPECT_EQ(want.satisfied_validation, got.satisfied_validation)
      << "entry " << id;
  EXPECT_EQ(want.success, got.success) << "entry " << id;
  EXPECT_EQ(want.validation.f1, got.validation.f1) << "entry " << id;
  EXPECT_EQ(want.validation.equal_opportunity,
            got.validation.equal_opportunity)
      << "entry " << id;
  EXPECT_EQ(want.validation.safety, got.validation.safety) << "entry " << id;
  EXPECT_EQ(want.validation.feature_fraction, got.validation.feature_fraction)
      << "entry " << id;
  EXPECT_EQ(want.validation.selected_features,
            got.validation.selected_features)
      << "entry " << id;
  EXPECT_EQ(want.validation.total_features, got.validation.total_features)
      << "entry " << id;
}

// Byte offsets of the spill header fields (docs/CACHE.md).
constexpr size_t kVersionOffset = 8;
constexpr size_t kSuiteOffset = 16;
constexpr size_t kEntryCountOffset = 32;

void PatchU64(std::string* blob, size_t offset, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    (*blob)[offset + i] = static_cast<char>((value >> (8 * i)) & 0xFF);
  }
}

void PatchU32(std::string* blob, size_t offset, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    (*blob)[offset + i] = static_cast<char>((value >> (8 * i)) & 0xFF);
  }
}

TEST(EvalCacheSpillTest, RoundTripIsByteIdentical) {
  ShardedEvalCache source(EvalCacheOptions{.fingerprint = 0xFEEDULL});
  constexpr uint32_t kEntries = 257;
  for (uint32_t id = 0; id < kEntries; ++id) {
    EXPECT_TRUE(source.InsertPublished(MaskFor(id), OutcomeFor(id)));
  }
  const std::string blob = source.Serialize();

  ShardedEvalCache restored(EvalCacheOptions{.fingerprint = 0xFEEDULL});
  ASSERT_TRUE(restored.RestoreState(blob).ok());
  EXPECT_EQ(restored.size(), kEntries);
  for (uint32_t id = 0; id < kEntries; ++id) {
    fs::EvalOutcome got;
    ASSERT_TRUE(restored.Lookup(MaskFor(id), &got)) << "entry " << id;
    ExpectOutcomeEq(OutcomeFor(id), got, id);
  }
}

TEST(EvalCacheSpillTest, PendingEntriesAreNotSpilled) {
  ShardedEvalCache cache;
  EXPECT_TRUE(cache.InsertPublished(MaskFor(1), OutcomeFor(1)));
  fs::EvalOutcome scratch;
  ASSERT_EQ(cache.Acquire(MaskFor(2), &scratch),
            ShardedEvalCache::Acquired::kOwner);  // left pending

  ShardedEvalCache restored;
  ASSERT_TRUE(restored.RestoreState(cache.Serialize()).ok());
  EXPECT_EQ(restored.size(), 1u);
  cache.Abandon(MaskFor(2));
}

TEST(EvalCacheSpillTest, RejectsBadMagic) {
  ShardedEvalCache cache;
  std::string blob = cache.Serialize();
  blob[0] = 'X';
  const Status status = cache.RestoreState(blob);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("magic"), std::string::npos);
}

TEST(EvalCacheSpillTest, RejectsUnsupportedFormatVersion) {
  ShardedEvalCache cache;
  std::string blob = cache.Serialize();
  PatchU32(&blob, kVersionOffset, kEvalCacheFormatVersion + 1);
  const Status status = cache.RestoreState(blob);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("version"), std::string::npos);
}

TEST(EvalCacheSpillTest, RejectsStaleSuiteVersion) {
  ShardedEvalCache cache;
  std::string blob = cache.Serialize();
  PatchU64(&blob, kSuiteOffset, kSuiteVersion + 1);
  const Status status = cache.RestoreState(blob);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("suite version"), std::string::npos);
}

TEST(EvalCacheSpillTest, RejectsFingerprintMismatch) {
  ShardedEvalCache source(EvalCacheOptions{.fingerprint = 1});
  EXPECT_TRUE(source.InsertPublished(MaskFor(0), OutcomeFor(0)));
  ShardedEvalCache other(EvalCacheOptions{.fingerprint = 2});
  const Status status = other.RestoreState(source.Serialize());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("fingerprint"), std::string::npos);
  EXPECT_EQ(other.size(), 0u);
}

TEST(EvalCacheSpillTest, RejectsTruncatedBlob) {
  ShardedEvalCache cache;
  for (uint32_t id = 0; id < 5; ++id) {
    EXPECT_TRUE(cache.InsertPublished(MaskFor(id), OutcomeFor(id)));
  }
  const std::string blob = cache.Serialize();
  ShardedEvalCache restored;
  // Header-level truncation and payload-level truncation both reject.
  EXPECT_EQ(restored.RestoreState(blob.substr(0, 20)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(restored.RestoreState(blob.substr(0, blob.size() - 3)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(restored.size(), 0u);  // nothing half-merged
}

TEST(EvalCacheSpillTest, RejectsChecksumCorruption) {
  ShardedEvalCache cache;
  EXPECT_TRUE(cache.InsertPublished(MaskFor(3), OutcomeFor(3)));
  std::string blob = cache.Serialize();
  blob[blob.size() - 1] ^= 0x5A;  // flip payload bits, header intact
  ShardedEvalCache restored;
  const Status status = restored.RestoreState(blob);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("checksum"), std::string::npos);
}

TEST(EvalCacheSpillTest, RejectsTrailingBytes) {
  ShardedEvalCache cache;
  EXPECT_TRUE(cache.InsertPublished(MaskFor(1), OutcomeFor(1)));
  EXPECT_TRUE(cache.InsertPublished(MaskFor(2), OutcomeFor(2)));
  std::string blob = cache.Serialize();
  // Claim one entry while the (checksummed) payload holds two: the decoder
  // must notice the leftover bytes instead of silently dropping an entry.
  PatchU64(&blob, kEntryCountOffset, 1);
  ShardedEvalCache restored;
  const Status status = restored.RestoreState(blob);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("trailing"), std::string::npos);
  EXPECT_EQ(restored.size(), 0u);
}

TEST(EvalCacheSpillTest, RejectsOverclaimedEntryCount) {
  ShardedEvalCache cache;
  EXPECT_TRUE(cache.InsertPublished(MaskFor(1), OutcomeFor(1)));
  std::string blob = cache.Serialize();
  // The entry count lives in the header, outside the payload checksum, so
  // a hostile value passes the checksum test unchanged. A count the
  // remaining bytes cannot possibly hold must be rejected BEFORE it sizes
  // the decode buffer (a naive reserve of 2^60 entries is an OOM bomb).
  PatchU64(&blob, kEntryCountOffset, uint64_t{1} << 60);
  ShardedEvalCache restored;
  const Status status = restored.RestoreState(blob);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("header claims"), std::string::npos);
  EXPECT_EQ(restored.size(), 0u);
}

TEST(EvalCacheSpillTest, RejectsEntryCountJustPastPayload) {
  ShardedEvalCache cache;
  EXPECT_TRUE(cache.InsertPublished(MaskFor(1), OutcomeFor(1)));
  std::string blob = cache.Serialize();
  // One real entry in the payload, header claiming two: the smallest
  // possible over-claim must reject at the count cap or the decode loop,
  // never half-merge.
  PatchU64(&blob, kEntryCountOffset, 2);
  ShardedEvalCache restored;
  EXPECT_EQ(restored.RestoreState(blob).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(restored.size(), 0u);
}

TEST(EvalCacheSpillTest, LoadFromMissingFileIsNotFound) {
  ShardedEvalCache cache;
  EXPECT_EQ(cache.LoadFromFile("/nonexistent/dfs-eval-cache.spill").code(),
            StatusCode::kNotFound);
}

TEST(EvalCacheSpillTest, SaveAndLoadFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/eval_cache.spill";
  ShardedEvalCache source;
  for (uint32_t id = 0; id < 32; ++id) {
    EXPECT_TRUE(source.InsertPublished(MaskFor(id), OutcomeFor(id)));
  }
  ASSERT_TRUE(source.SaveToFile(path).ok());
  ShardedEvalCache restored;
  ASSERT_TRUE(restored.LoadFromFile(path).ok());
  EXPECT_EQ(restored.size(), 32u);
  std::remove(path.c_str());
}

// ---- Membership filter ------------------------------------------------

// A starved bit budget makes the filter dense, so absent-mask probes
// frequently pass the filter: every one of them must still come back as a
// correct miss through the locked map probe (false positives fall
// through; the filter only decides *when* a lock is taken).
TEST(EvalCacheFilterTest, FalsePositivesFallThroughToMissing) {
  ShardedEvalCache cache(
      EvalCacheOptions{.enable_filter = true, .filter_bits_per_entry = 1});
  constexpr uint32_t kResident = 512;
  for (uint32_t id = 0; id < kResident; ++id) {
    EXPECT_TRUE(cache.InsertPublished(MaskFor(id, true), OutcomeFor(id)));
  }
  fs::EvalOutcome got;
  uint32_t misses = 0;
  for (uint32_t id = 0; id < kResident; ++id) {
    if (!cache.Lookup(MaskFor(id, /*resident=*/false), &got)) ++misses;
  }
  EXPECT_EQ(misses, kResident);  // no phantom hits, ever

  const EvalCacheStats stats = cache.Stats();
  // Every miss was answered one way or the other; both paths are counted.
  EXPECT_EQ(stats.filter_negatives + stats.filter_false_positives, kResident);
  EXPECT_EQ(stats.misses, kResident);
}

// No false negatives: every published mask must pass the filter and hit.
TEST(EvalCacheFilterTest, PublishedMasksAlwaysHit) {
  ShardedEvalCache cache(
      EvalCacheOptions{.enable_filter = true, .filter_bits_per_entry = 4});
  constexpr uint32_t kResident = 2048;  // forces filter growth + rebuild
  for (uint32_t id = 0; id < kResident; ++id) {
    EXPECT_TRUE(cache.InsertPublished(MaskFor(id), OutcomeFor(id)));
  }
  fs::EvalOutcome got;
  for (uint32_t id = 0; id < kResident; ++id) {
    ASSERT_TRUE(cache.Lookup(MaskFor(id), &got)) << "entry " << id;
    EXPECT_EQ(got.objective, OutcomeFor(id).objective);
  }
  const EvalCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, kResident);
  EXPECT_EQ(stats.inserts, kResident);
}

// With the filter on, a cold cache answers misses without ever reporting
// a false positive against an empty shard map.
TEST(EvalCacheFilterTest, ColdCacheMissesAreFilterNegatives) {
  ShardedEvalCache cache;
  fs::EvalOutcome got;
  for (uint32_t id = 0; id < 64; ++id) {
    EXPECT_FALSE(cache.Lookup(MaskFor(id), &got));
  }
  const EvalCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.filter_negatives, 64u);
  EXPECT_EQ(stats.filter_false_positives, 0u);
}

TEST(EvalCacheFilterTest, DisabledFilterStillAnswersCorrectly) {
  ShardedEvalCache cache(EvalCacheOptions{.enable_filter = false});
  EXPECT_TRUE(cache.InsertPublished(MaskFor(7), OutcomeFor(7)));
  fs::EvalOutcome got;
  EXPECT_TRUE(cache.Lookup(MaskFor(7), &got));
  EXPECT_FALSE(cache.Lookup(MaskFor(8), &got));
  const EvalCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.filter_negatives, 0u);  // no filter to answer anything
}

// A pending (in-flight) entry reads as a miss through Lookup — the
// non-blocking contract — and as a blocking hit through Acquire.
TEST(EvalCacheFilterTest, PendingEntryReadsAsLookupMiss) {
  ShardedEvalCache cache;
  fs::EvalOutcome scratch;
  ASSERT_EQ(cache.Acquire(MaskFor(1), &scratch),
            ShardedEvalCache::Acquired::kOwner);
  fs::EvalOutcome got;
  EXPECT_FALSE(cache.Lookup(MaskFor(1), &got));
  cache.Publish(MaskFor(1), OutcomeFor(1));
  EXPECT_TRUE(cache.Lookup(MaskFor(1), &got));
}

// ---- OwnerGuard (dead-owner regression) -------------------------------

// An owner that unwinds without resolving must abandon its in-flight slot
// eagerly: the next Acquire of the same mask becomes a fresh owner
// instead of serializing behind (or deadlocking on) a dead one.
TEST(EvalCacheOwnerGuardTest, UnresolvedGuardAbandonsEagerly) {
  ShardedEvalCache cache;
  const fs::FeatureMask mask = MaskFor(5);
  fs::EvalOutcome scratch;
  ASSERT_EQ(cache.Acquire(mask, &scratch),
            ShardedEvalCache::Acquired::kOwner);
  { ShardedEvalCache::OwnerGuard guard(&cache, mask); }  // owner "dies"
  // Retry is a fresh owner, and the entry can be published normally.
  ASSERT_EQ(cache.Acquire(mask, &scratch),
            ShardedEvalCache::Acquired::kOwner);
  ShardedEvalCache::OwnerGuard guard(&cache, mask);
  guard.Publish(OutcomeFor(5));
  EXPECT_EQ(cache.Acquire(mask, &scratch),
            ShardedEvalCache::Acquired::kHit);
  EXPECT_EQ(scratch.objective, OutcomeFor(5).objective);
}

TEST(EvalCacheOwnerGuardTest, DeadOwnerReleasesBlockedWaiter) {
  ShardedEvalCache cache;
  const fs::FeatureMask mask = MaskFor(9);
  fs::EvalOutcome scratch;
  ASSERT_EQ(cache.Acquire(mask, &scratch),
            ShardedEvalCache::Acquired::kOwner);
  auto guard =
      std::make_unique<ShardedEvalCache::OwnerGuard>(&cache, mask);

  std::atomic<int> observed{-1};
  std::thread waiter([&] {
    fs::EvalOutcome out;
    observed.store(static_cast<int>(cache.Acquire(mask, &out)));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  guard.reset();  // dead owner: destructor abandons
  waiter.join();
  EXPECT_EQ(observed.load(),
            static_cast<int>(ShardedEvalCache::Acquired::kAbandoned));
  // The slot is free again.
  EXPECT_EQ(cache.Acquire(mask, &scratch),
            ShardedEvalCache::Acquired::kOwner);
  cache.Abandon(mask);
}

TEST(EvalCacheOwnerGuardTest, ExplicitResolveDisarmsDestructor) {
  ShardedEvalCache cache;
  const fs::FeatureMask mask = MaskFor(11);
  fs::EvalOutcome scratch;
  ASSERT_EQ(cache.Acquire(mask, &scratch),
            ShardedEvalCache::Acquired::kOwner);
  {
    ShardedEvalCache::OwnerGuard guard(&cache, mask);
    guard.Publish(OutcomeFor(11));
  }  // destructor must NOT abandon the published entry
  EXPECT_EQ(cache.Acquire(mask, &scratch), ShardedEvalCache::Acquired::kHit);
}

// ---- Registry ---------------------------------------------------------

TEST(EvalCacheRegistryTest, GetOrCreateIsKeyedByFingerprint) {
  EvalCacheRegistry registry;
  auto a = registry.GetOrCreate(1);
  auto b = registry.GetOrCreate(2);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(registry.GetOrCreate(1).get(), a.get());
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(a->fingerprint(), 1u);
}

TEST(EvalCacheRegistryTest, ContainerRoundTripAcrossCaches) {
  const std::string path = ::testing::TempDir() + "/eval_caches.spill";
  EvalCacheRegistry registry;
  auto a = registry.GetOrCreate(10);
  auto b = registry.GetOrCreate(20);
  for (uint32_t id = 0; id < 8; ++id) {
    EXPECT_TRUE(a->InsertPublished(MaskFor(id), OutcomeFor(id)));
  }
  EXPECT_TRUE(b->InsertPublished(MaskFor(100), OutcomeFor(100)));
  ASSERT_TRUE(registry.SaveToFile(path).ok());

  EvalCacheRegistry restored;
  auto count = restored.LoadFromFile(path);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, 9u);
  EXPECT_EQ(restored.size(), 2u);
  fs::EvalOutcome got;
  EXPECT_TRUE(restored.GetOrCreate(10)->Lookup(MaskFor(3), &got));
  ExpectOutcomeEq(OutcomeFor(3), got, 3);
  EXPECT_TRUE(restored.GetOrCreate(20)->Lookup(MaskFor(100), &got));
  const EvalCacheStats stats = restored.Stats();
  EXPECT_EQ(stats.entries, 9u);
  EXPECT_EQ(stats.restores, 1u);
  std::remove(path.c_str());
}

TEST(EvalCacheRegistryTest, StaleMemberRejectsWholeContainer) {
  const std::string path = ::testing::TempDir() + "/eval_caches_stale.spill";
  EvalCacheRegistry registry;
  EXPECT_TRUE(
      registry.GetOrCreate(7)->InsertPublished(MaskFor(0), OutcomeFor(0)));
  ASSERT_TRUE(registry.SaveToFile(path).ok());

  // Corrupt the member blob's suite-version field in place: container
  // header (16) + member length prefix (8) + member magic/version/reserved
  // (16) = offset 40.
  std::string container;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buffer[4096];
    size_t n;
    while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
      container.append(buffer, n);
    }
    std::fclose(f);
  }
  PatchU64(&container, 40, kSuiteVersion + 1);
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(container.data(), 1, container.size(), f);
    std::fclose(f);
  }

  EvalCacheRegistry restored;
  const auto count = restored.LoadFromFile(path);
  EXPECT_EQ(count.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(restored.size(), 0u);  // nothing half-merged
  std::remove(path.c_str());
}

TEST(EvalCacheRegistryTest, MissingContainerIsNotFound) {
  EvalCacheRegistry registry;
  EXPECT_EQ(registry.LoadFromFile("/nonexistent/registry.spill")
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(EvalCacheRegistryTest, RestoreFromStringRoundTrip) {
  EvalCacheRegistry registry;
  EXPECT_TRUE(
      registry.GetOrCreate(5)->InsertPublished(MaskFor(0), OutcomeFor(0)));
  EXPECT_TRUE(
      registry.GetOrCreate(6)->InsertPublished(MaskFor(1), OutcomeFor(1)));
  const std::string path = ::testing::TempDir() + "/eval_caches_mem.spill";
  ASSERT_TRUE(registry.SaveToFile(path).ok());
  std::string container;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buffer[4096];
    size_t n;
    while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
      container.append(buffer, n);
    }
    std::fclose(f);
  }
  std::remove(path.c_str());

  EvalCacheRegistry restored;
  const auto count = restored.RestoreFromString(container);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, 2u);
  EXPECT_EQ(restored.size(), 2u);
}

TEST(EvalCacheRegistryTest, RejectsOverclaimedCacheCount) {
  EvalCacheRegistry registry;
  EXPECT_TRUE(
      registry.GetOrCreate(7)->InsertPublished(MaskFor(0), OutcomeFor(0)));
  const std::string path = ::testing::TempDir() + "/eval_caches_claim.spill";
  ASSERT_TRUE(registry.SaveToFile(path).ok());
  std::string container;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buffer[4096];
    size_t n;
    while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
      container.append(buffer, n);
    }
    std::fclose(f);
  }
  std::remove(path.c_str());

  // The container header carries no checksum at all: a hostile member
  // count (offset 12: magic 8 + version 4) must be capped by what the
  // remaining bytes could hold before it sizes the blob vector.
  PatchU32(&container, 12, 0xFFFFFFFFu);
  EvalCacheRegistry restored;
  const auto count = restored.RestoreFromString(container, "test-blob");
  EXPECT_EQ(count.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(count.status().message().find("header claims"),
            std::string::npos);
  EXPECT_NE(count.status().message().find("test-blob"), std::string::npos);
  EXPECT_EQ(restored.size(), 0u);
}

TEST(EvalCacheRegistryTest, RejectsTruncatedMemberLength) {
  EvalCacheRegistry registry;
  EXPECT_TRUE(
      registry.GetOrCreate(8)->InsertPublished(MaskFor(0), OutcomeFor(0)));
  const std::string path = ::testing::TempDir() + "/eval_caches_trunc.spill";
  ASSERT_TRUE(registry.SaveToFile(path).ok());
  std::string container;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buffer[4096];
    size_t n;
    while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
      container.append(buffer, n);
    }
    std::fclose(f);
  }
  std::remove(path.c_str());

  // A member length prefix pointing past the end of the container
  // (offset 16 is the first member's u64 length) must reject cleanly.
  PatchU64(&container, 16, container.size());
  EvalCacheRegistry restored;
  const auto count = restored.RestoreFromString(container);
  EXPECT_EQ(count.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(count.status().message().find("truncated"), std::string::npos);
  EXPECT_EQ(restored.size(), 0u);
}

// ---- Engine L2 integration --------------------------------------------

MlScenario CacheTestScenario() {
  constraints::ConstraintSet set;
  set.min_f1 = 0.999;  // unreachable: full search sweep, many evaluations
  set.max_search_seconds = 60.0;
  Rng rng(301);
  auto scenario =
      MakeScenario(testing::MakeLinearDataset(200, 3, 300),
                   ml::ModelKind::kLogisticRegression, set, rng);
  DFS_CHECK(scenario.ok());
  return std::move(scenario).value();
}

// A second engine sharing the L2 cache must select the byte-identical
// subset while recomputing nothing: shared hits replay the same outcomes
// through the same reduction (DESIGN.md §2h preserves §2d).
TEST(EngineSharedCacheTest, WarmRunSelectsIdenticallyWithoutEvaluating) {
  const MlScenario scenario = CacheTestScenario();
  auto shared = std::make_shared<ShardedEvalCache>();
  EngineOptions options;
  options.seed = 77;
  options.num_threads = 1;
  options.shared_cache = shared;

  auto strategy = fs::CreateStrategy(fs::StrategyId::kSfs, /*seed=*/5);
  DfsEngine cold_engine(scenario, options);
  const RunResult cold = cold_engine.Run(*strategy);
  ASSERT_GT(cold.evaluations, 0);
  EXPECT_EQ(shared->size(), static_cast<size_t>(cold.evaluations));

  auto strategy2 = fs::CreateStrategy(fs::StrategyId::kSfs, /*seed=*/5);
  DfsEngine warm_engine(scenario, options);
  const RunResult warm = warm_engine.Run(*strategy2);

  EXPECT_EQ(warm.selected, cold.selected);
  EXPECT_EQ(warm.success, cold.success);
  EXPECT_EQ(warm.best_distance_validation, cold.best_distance_validation);
  EXPECT_EQ(warm.validation_values.f1, cold.validation_values.f1);
  // Every wrapper evaluation was served from the shared cache.
  EXPECT_EQ(warm.evaluations, 0);
  EXPECT_EQ(warm.cache_hits, cold.evaluations + cold.cache_hits);
}

// The shared cache must not change what a run selects — only what it
// recomputes. A run with the L2 attached and a run without must agree.
TEST(EngineSharedCacheTest, SharedCacheDoesNotChangeSelection) {
  const MlScenario scenario = CacheTestScenario();
  EngineOptions options;
  options.seed = 77;
  options.num_threads = 1;

  auto strategy = fs::CreateStrategy(fs::StrategyId::kSfs, /*seed=*/5);
  DfsEngine plain_engine(scenario, options);
  const RunResult plain = plain_engine.Run(*strategy);

  options.shared_cache = std::make_shared<ShardedEvalCache>();
  auto strategy2 = fs::CreateStrategy(fs::StrategyId::kSfs, /*seed=*/5);
  DfsEngine shared_engine(scenario, options);
  const RunResult with_shared = shared_engine.Run(*strategy2);

  EXPECT_EQ(with_shared.selected, plain.selected);
  EXPECT_EQ(with_shared.success, plain.success);
  EXPECT_EQ(with_shared.evaluations, plain.evaluations);
  EXPECT_EQ(with_shared.best_distance_validation,
            plain.best_distance_validation);
}

// Spill the shared cache, restore it into a fresh one (the daemon restart
// path), and verify a run against the restored cache is still fully warm.
TEST(EngineSharedCacheTest, WarmRestartServesFromRestoredSpill) {
  const MlScenario scenario = CacheTestScenario();
  auto shared = std::make_shared<ShardedEvalCache>();
  EngineOptions options;
  options.seed = 77;
  options.num_threads = 1;
  options.shared_cache = shared;

  auto strategy = fs::CreateStrategy(fs::StrategyId::kSfs, /*seed=*/5);
  DfsEngine cold_engine(scenario, options);
  const RunResult cold = cold_engine.Run(*strategy);
  ASSERT_GT(cold.evaluations, 0);

  auto restored = std::make_shared<ShardedEvalCache>();
  ASSERT_TRUE(restored->RestoreState(shared->Serialize()).ok());
  options.shared_cache = restored;

  auto strategy2 = fs::CreateStrategy(fs::StrategyId::kSfs, /*seed=*/5);
  DfsEngine warm_engine(scenario, options);
  const RunResult warm = warm_engine.Run(*strategy2);
  EXPECT_EQ(warm.selected, cold.selected);
  EXPECT_EQ(warm.evaluations, 0);
}

// ---- Concurrent churn (TSan fleet) ------------------------------------

// Lookups, inserts, acquire/publish/abandon, spills, restores and stats
// reads all race on one cache. A starved filter budget forces concurrent
// filter growth/rebuild under the readers. Run under TSan by
// scripts/check.sh --sanitize.
TEST(EvalCacheChurnTest, ConcurrentLookupInsertSpillChurn) {
  ShardedEvalCache cache(EvalCacheOptions{.num_shards = 4,
                                          .enable_filter = true,
                                          .filter_bits_per_entry = 8});
  constexpr int kThreads = 8;
  constexpr uint32_t kMasks = 1024;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> wrong{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      fs::EvalOutcome got;
      for (uint32_t round = 0; round < 400 && !stop.load(); ++round) {
        const uint32_t id = (round * 17 + t * 131) % kMasks;
        switch (t % 4) {
          case 0:  // insert-publish
            cache.InsertPublished(MaskFor(id), OutcomeFor(id));
            break;
          case 1:  // non-blocking lookups: a hit must carry the right value
            if (cache.Lookup(MaskFor(id), &got) &&
                got.objective != OutcomeFor(id).objective) {
              wrong.fetch_add(1);
            }
            break;
          case 2:  // in-flight dedup traffic, including abandons
            switch (cache.Acquire(MaskFor(id), &got)) {
              case ShardedEvalCache::Acquired::kOwner:
                if (id % 5 == 0) {
                  cache.Abandon(MaskFor(id));
                } else {
                  cache.Publish(MaskFor(id), OutcomeFor(id));
                }
                break;
              case ShardedEvalCache::Acquired::kHit:
                if (got.objective != OutcomeFor(id).objective) {
                  wrong.fetch_add(1);
                }
                break;
              case ShardedEvalCache::Acquired::kAbandoned:
                break;
            }
            break;
          case 3:  // spill/restore + stats under load
            if (round % 16 == 0) {
              ShardedEvalCache scratch_cache;
              if (!scratch_cache.RestoreState(cache.Serialize()).ok()) {
                wrong.fetch_add(1);
              }
            } else {
              const EvalCacheStats stats = cache.Stats();
              if (stats.shard_entries.size() != 4) wrong.fetch_add(1);
            }
            break;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(wrong.load(), 0u);
  EXPECT_GT(cache.size(), 0u);
}

}  // namespace
}  // namespace dfs::core
