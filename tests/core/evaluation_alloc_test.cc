// Allocation-count proof for the zero-copy evaluation path (own test
// binary: it replaces the global operator new/delete with counting
// versions). The evaluation memory contract (DESIGN.md §2e) promises that
// after warm-up the hot wrapper-evaluation components — masked-column
// gathers and batch prediction — perform no heap allocation; these tests
// enforce exactly that with a global allocation hook. The engine-level
// consequence follows by construction: the gathered matrices and the
// prediction buffer live in the engine's leased EvalScratch, and
// Matrix::Resize/vector::resize never shrink capacity, so a warm scratch
// sees only the allocation-free calls proven here.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "data/dataset.h"
#include "linalg/matrix.h"
#include "ml/classifier.h"
#include "ml/random_forest.h"
#include "testing/test_util.h"

// Sanitizers interpose their own allocator and shadow accounting; the
// counting hook is meaningless (and ASan flags the malloc/free mismatch in
// some configurations), so these tests skip themselves under ASan/TSan.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define DFS_ALLOC_HOOK_UNUSABLE 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define DFS_ALLOC_HOOK_UNUSABLE 1
#endif
#endif

namespace {
std::atomic<bool> g_counting{false};
std::atomic<long long> g_allocations{0};
}  // namespace

#ifndef DFS_ALLOC_HOOK_UNUSABLE

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#endif  // !DFS_ALLOC_HOOK_UNUSABLE

namespace dfs {
namespace {

/// Counts operator-new calls made by `body`.
template <typename Body>
long long CountAllocations(const Body& body) {
  g_allocations.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  body();
  g_counting.store(false, std::memory_order_relaxed);
  return g_allocations.load(std::memory_order_relaxed);
}

#ifdef DFS_ALLOC_HOOK_UNUSABLE
#define DFS_SKIP_UNDER_SANITIZERS() \
  GTEST_SKIP() << "allocation hook disabled under sanitizers"
#else
#define DFS_SKIP_UNDER_SANITIZERS() (void)0
#endif

TEST(EvaluationAllocTest, WarmPredictBatchAllocatesNothing) {
  DFS_SKIP_UNDER_SANITIZERS();
  const data::Dataset train = testing::MakeLinearDataset(200, 2, 41);
  const linalg::Matrix x = train.ToMatrix(train.AllFeatures());

  for (const auto kind :
       {ml::ModelKind::kLogisticRegression, ml::ModelKind::kNaiveBayes,
        ml::ModelKind::kDecisionTree, ml::ModelKind::kLinearSvm}) {
    auto model = ml::CreateClassifier(kind, ml::Hyperparameters());
    ASSERT_TRUE(model->Fit(x, train.labels()).ok());
    std::vector<int> predictions;
    model->PredictBatch(x, &predictions);  // warm-up sizes the buffer
    const long long allocations = CountAllocations([&] {
      for (int repeat = 0; repeat < 20; ++repeat) {
        model->PredictBatch(x, &predictions);
      }
    });
    EXPECT_EQ(allocations, 0) << ml::ModelKindToString(kind);
  }
}

TEST(EvaluationAllocTest, WarmForestPredictionAllocatesNothing) {
  DFS_SKIP_UNDER_SANITIZERS();
  const data::Dataset train = testing::MakeLinearDataset(120, 1, 42);
  const linalg::Matrix x = train.ToMatrix(train.AllFeatures());
  ml::RandomForestOptions options;
  options.num_trees = 8;
  ml::RandomForest forest(options);
  ASSERT_TRUE(forest.Fit(x, train.labels()).ok());
  std::vector<int> predictions;
  forest.PredictBatch(x, &predictions);  // warms the subspace row scratch
  const long long allocations = CountAllocations([&] {
    for (int repeat = 0; repeat < 5; ++repeat) {
      forest.PredictBatch(x, &predictions);
    }
  });
  EXPECT_EQ(allocations, 0);
}

TEST(EvaluationAllocTest, WarmGatherIntoAllocatesNothing) {
  DFS_SKIP_UNDER_SANITIZERS();
  const data::Dataset dataset = testing::MakeLinearDataset(150, 3, 43);
  // Feature lists are hoisted: a braced list inside the counted region
  // would itself allocate a temporary vector.
  const std::vector<int> wide = {0, 1, 2, 3, 4};
  const std::vector<int> narrow = {4, 2};
  const std::vector<int> mid = {1, 3, 0};
  linalg::Matrix scratch;
  dataset.GatherInto(wide, &scratch);  // widest mask first
  const long long allocations = CountAllocations([&] {
    for (int repeat = 0; repeat < 20; ++repeat) {
      dataset.GatherInto(wide, &scratch);
      dataset.GatherInto(narrow, &scratch);
      dataset.GatherInto(mid, &scratch);
    }
  });
  EXPECT_EQ(allocations, 0);
}

TEST(EvaluationAllocTest, WarmSpanPredictProbaAllocatesNothing) {
  DFS_SKIP_UNDER_SANITIZERS();
  const data::Dataset train = testing::MakeLinearDataset(100, 1, 44);
  const linalg::Matrix x = train.ToMatrix(train.AllFeatures());
  for (const auto kind :
       {ml::ModelKind::kLogisticRegression, ml::ModelKind::kNaiveBayes,
        ml::ModelKind::kDecisionTree, ml::ModelKind::kLinearSvm}) {
    auto model = ml::CreateClassifier(kind, ml::Hyperparameters());
    ASSERT_TRUE(model->Fit(x, train.labels()).ok());
    double sink = 0.0;
    const long long allocations = CountAllocations([&] {
      for (int r = 0; r < x.rows(); ++r) {
        sink += model->PredictProba(x.RowSpan(r));
      }
    });
    EXPECT_EQ(allocations, 0) << ml::ModelKindToString(kind);
    EXPECT_GE(sink, 0.0);
  }
}

}  // namespace
}  // namespace dfs
