// Round-trip tests for model and optimizer persistence.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/optimizer.h"
#include "ml/decision_tree.h"
#include "ml/random_forest.h"
#include "testing/test_util.h"

namespace dfs::ml {
namespace {

linalg::Matrix ToMatrix(const data::Dataset& dataset) {
  return dataset.ToMatrix(dataset.AllFeatures());
}

TEST(DecisionTreeSerializationTest, PredictionsSurviveRoundTrip) {
  const data::Dataset train = testing::MakeLinearDataset(250, 3, 901);
  DecisionTree tree((Hyperparameters()));
  ASSERT_TRUE(tree.Fit(ToMatrix(train), train.labels()).ok());
  auto restored = DecisionTree::Deserialize(tree.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->NodeCount(), tree.NodeCount());
  for (int r = 0; r < train.num_rows(); ++r) {
    const auto row = ToMatrix(train).Row(r);
    EXPECT_DOUBLE_EQ(restored->PredictProba(row), tree.PredictProba(row));
  }
  // Importances survive too.
  ASSERT_TRUE(restored->FeatureImportances().has_value());
  EXPECT_EQ(*restored->FeatureImportances(), *tree.FeatureImportances());
}

TEST(DecisionTreeSerializationTest, RejectsCorruptInput) {
  EXPECT_FALSE(DecisionTree::Deserialize("garbage").ok());
  EXPECT_FALSE(DecisionTree::Deserialize("tree v1\n5 2\n1\n").ok());
  // Out-of-range child index.
  EXPECT_FALSE(
      DecisionTree::Deserialize("tree v1\n5 2\n1\n0 0.5 7 8 0.5\n0\n").ok());
}

TEST(RandomForestSerializationTest, PredictionsSurviveRoundTrip) {
  const data::Dataset train = testing::MakeLinearDataset(200, 4, 902);
  RandomForestOptions options;
  options.num_trees = 12;
  RandomForest forest(options);
  ASSERT_TRUE(forest.Fit(ToMatrix(train), train.labels()).ok());
  auto restored = RandomForest::Deserialize(forest.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  for (int r = 0; r < 50; ++r) {
    const auto row = ToMatrix(train).Row(r);
    EXPECT_DOUBLE_EQ(restored->PredictProba(row), forest.PredictProba(row));
  }
}

TEST(RandomForestSerializationTest, RejectsCorruptInput) {
  EXPECT_FALSE(RandomForest::Deserialize("").ok());
  EXPECT_FALSE(RandomForest::Deserialize("forest v1\n1 2 0 1 7\n0.5\n9\n").ok());
}

}  // namespace
}  // namespace dfs::ml

namespace dfs::core {
namespace {

DfsOptimizer TrainSmallOptimizer() {
  std::vector<DfsOptimizer::TrainingExample> examples;
  Rng rng(903);
  for (int i = 0; i < 60; ++i) {
    DfsOptimizer::TrainingExample example;
    example.features.values.assign(ScenarioFeatures::Names().size(), 0.0);
    const double signal = rng.Uniform();
    example.features.values[0] = signal;
    example.outcomes[fs::StrategyId::kSfs] = signal > 0.5;
    example.outcomes[fs::StrategyId::kTpeChi2] = signal <= 0.5;
    example.outcomes[fs::StrategyId::kSbs] = true;  // degenerate constant
    examples.push_back(std::move(example));
  }
  DfsOptimizer optimizer;
  DFS_CHECK(optimizer
                .Train(examples,
                       {fs::StrategyId::kSfs, fs::StrategyId::kTpeChi2,
                        fs::StrategyId::kSbs})
                .ok());
  return optimizer;
}

TEST(OptimizerSerializationTest, ProbabilitiesSurviveRoundTrip) {
  const DfsOptimizer optimizer = TrainSmallOptimizer();
  auto text = optimizer.Serialize();
  ASSERT_TRUE(text.ok());
  auto restored = DfsOptimizer::Deserialize(*text);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->strategies(), optimizer.strategies());
  for (double signal : {0.1, 0.4, 0.6, 0.9}) {
    ScenarioFeatures query;
    query.values.assign(ScenarioFeatures::Names().size(), 0.0);
    query.values[0] = signal;
    auto original = optimizer.PredictProbabilities(query);
    auto loaded = restored->PredictProbabilities(query);
    ASSERT_TRUE(original.ok());
    ASSERT_TRUE(loaded.ok());
    for (const auto& [id, p] : *original) {
      EXPECT_DOUBLE_EQ(loaded->at(id), p);
    }
    EXPECT_EQ(*optimizer.Choose(query), *restored->Choose(query));
  }
}

TEST(OptimizerSerializationTest, FileRoundTrip) {
  const DfsOptimizer optimizer = TrainSmallOptimizer();
  const std::string path =
      (std::filesystem::temp_directory_path() / "dfs_optimizer_test.bin")
          .string();
  ASSERT_TRUE(optimizer.SaveToFile(path).ok());
  auto restored = DfsOptimizer::LoadFromFile(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->strategies().size(), 3u);
  std::remove(path.c_str());
}

TEST(OptimizerSerializationTest, UntrainedCannotSerialize) {
  DfsOptimizer optimizer;
  EXPECT_FALSE(optimizer.Serialize().ok());
}

TEST(OptimizerSerializationTest, RejectsCorruptInput) {
  EXPECT_FALSE(DfsOptimizer::Deserialize("nonsense").ok());
  EXPECT_FALSE(
      DfsOptimizer::Deserialize("dfs-optimizer v1\n100 3 0.25 99\n1\nNotAStrategy\nconstant 0 0\n")
          .ok());
  EXPECT_FALSE(DfsOptimizer::LoadFromFile("/nonexistent/opt.bin").ok());
}

}  // namespace
}  // namespace dfs::core
