#include <gtest/gtest.h>

#include <cmath>

#include "metrics/classification.h"
#include "ml/decision_tree.h"
#include "ml/linear_svm.h"
#include "ml/logistic_regression.h"
#include "ml/naive_bayes.h"
#include "ml/random_forest.h"
#include "testing/test_util.h"

namespace dfs::ml {
namespace {

linalg::Matrix ToMatrix(const data::Dataset& dataset) {
  return dataset.ToMatrix(dataset.AllFeatures());
}

TEST(LogisticRegressionTest, WeightsPointTowardSignal) {
  const data::Dataset train = testing::MakeLinearDataset(500, 4, 31);
  LogisticRegression model((Hyperparameters()));
  ASSERT_TRUE(model.Fit(ToMatrix(train), train.labels()).ok());
  // Signal features 0/1 have positive weights larger than any noise weight.
  const auto& w = model.weights();
  for (size_t f = 2; f < w.size(); ++f) {
    EXPECT_GT(w[0], std::fabs(w[f]));
    EXPECT_GT(w[1], std::fabs(w[f]));
  }
}

TEST(LogisticRegressionTest, ImportancesAreAbsoluteWeights) {
  const data::Dataset train = testing::MakeLinearDataset(200, 2, 32);
  LogisticRegression model((Hyperparameters()));
  ASSERT_TRUE(model.Fit(ToMatrix(train), train.labels()).ok());
  auto importances = model.FeatureImportances();
  ASSERT_TRUE(importances.has_value());
  for (size_t f = 0; f < importances->size(); ++f) {
    EXPECT_DOUBLE_EQ((*importances)[f], std::fabs(model.weights()[f]));
  }
}

TEST(LogisticRegressionTest, StrongRegularizationShrinksWeights) {
  const data::Dataset train = testing::MakeLinearDataset(300, 2, 33);
  Hyperparameters weak;
  weak.lr_c = 1000.0;
  Hyperparameters strong;
  strong.lr_c = 0.01;
  LogisticRegression weak_model(weak), strong_model(strong);
  ASSERT_TRUE(weak_model.Fit(ToMatrix(train), train.labels()).ok());
  ASSERT_TRUE(strong_model.Fit(ToMatrix(train), train.labels()).ok());
  EXPECT_LT(std::fabs(strong_model.weights()[0]),
            std::fabs(weak_model.weights()[0]));
}

TEST(LogisticRegressionTest, RejectsNonPositiveC) {
  Hyperparameters params;
  params.lr_c = 0.0;
  LogisticRegression model(params);
  EXPECT_FALSE(model.Fit(linalg::Matrix(2, 1), {0, 1}).ok());
}

TEST(NaiveBayesTest, HandlesSingleClassGracefully) {
  GaussianNaiveBayes model((Hyperparameters()));
  linalg::Matrix x = {{0.1}, {0.2}, {0.3}};
  ASSERT_TRUE(model.Fit(x, {1, 1, 1}).ok());
  EXPECT_EQ(model.Predict({0.15}), 1);
}

TEST(NaiveBayesTest, SeparatedGaussiansClassifiedCorrectly) {
  GaussianNaiveBayes model((Hyperparameters()));
  linalg::Matrix x = {{0.1}, {0.2}, {0.15}, {0.8}, {0.9}, {0.85}};
  ASSERT_TRUE(model.Fit(x, {0, 0, 0, 1, 1, 1}).ok());
  EXPECT_EQ(model.Predict({0.1}), 0);
  EXPECT_EQ(model.Predict({0.9}), 1);
  EXPECT_GT(model.PredictProba({0.9}), 0.95);
}

TEST(DecisionTreeTest, DepthOneIsAStump) {
  const data::Dataset train = testing::MakeLinearDataset(200, 0, 34);
  Hyperparameters params;
  params.dt_max_depth = 1;
  DecisionTree model(params);
  ASSERT_TRUE(model.Fit(ToMatrix(train), train.labels()).ok());
  EXPECT_LE(model.NodeCount(), 3);
}

TEST(DecisionTreeTest, DeeperTreesFitBetterInSample) {
  const data::Dataset train = testing::MakeLinearDataset(300, 0, 35);
  auto in_sample_f1 = [&](int depth) {
    Hyperparameters params;
    params.dt_max_depth = depth;
    DecisionTree model(params);
    EXPECT_TRUE(model.Fit(ToMatrix(train), train.labels()).ok());
    return metrics::F1Score(train.labels(),
                            model.PredictBatch(ToMatrix(train)));
  };
  EXPECT_GE(in_sample_f1(7) + 1e-9, in_sample_f1(1));
}

TEST(DecisionTreeTest, PureNodeBecomesLeaf) {
  DecisionTree model((Hyperparameters()));
  linalg::Matrix x = {{0.1}, {0.2}, {0.3}};
  ASSERT_TRUE(model.Fit(x, {1, 1, 1}).ok());
  EXPECT_EQ(model.NodeCount(), 1);
  EXPECT_DOUBLE_EQ(model.PredictProba({0.5}), 1.0);
}

TEST(DecisionTreeTest, ImportancesSumToOneAndFavorSignal) {
  const data::Dataset train = testing::MakeLinearDataset(400, 3, 36);
  DecisionTree model((Hyperparameters()));
  ASSERT_TRUE(model.Fit(ToMatrix(train), train.labels()).ok());
  auto importances = model.FeatureImportances();
  ASSERT_TRUE(importances.has_value());
  double total = 0.0;
  for (double imp : *importances) total += imp;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT((*importances)[0] + (*importances)[1], 0.7);
}

TEST(DecisionTreeTest, RejectsInvalidDepth) {
  Hyperparameters params;
  params.dt_max_depth = 0;
  DecisionTree model(params);
  EXPECT_FALSE(model.Fit(linalg::Matrix(2, 1), {0, 1}).ok());
}

TEST(LinearSvmTest, ImportancesAreAbsoluteWeights) {
  const data::Dataset train = testing::MakeLinearDataset(300, 2, 37);
  LinearSvm model((Hyperparameters()));
  ASSERT_TRUE(model.Fit(ToMatrix(train), train.labels()).ok());
  auto importances = model.FeatureImportances();
  ASSERT_TRUE(importances.has_value());
  EXPECT_EQ(importances->size(), 4u);
  // Signal features dominate noise.
  EXPECT_GT((*importances)[0], (*importances)[2]);
  EXPECT_GT((*importances)[1], (*importances)[3]);
}

TEST(LinearSvmTest, RejectsNonPositiveC) {
  Hyperparameters params;
  params.svm_c = -1.0;
  LinearSvm model(params);
  EXPECT_FALSE(model.Fit(linalg::Matrix(2, 1), {0, 1}).ok());
}

TEST(RandomForestTest, BeatsSingleStumpOnNoisyData) {
  const data::Dataset train = testing::MakeLinearDataset(400, 6, 38);
  const data::Dataset test = testing::MakeLinearDataset(200, 6, 39);
  RandomForestOptions options;
  RandomForest forest(options);
  ASSERT_TRUE(forest.Fit(ToMatrix(train), train.labels()).ok());
  const double forest_f1 =
      metrics::F1Score(test.labels(), forest.PredictBatch(ToMatrix(test)));
  EXPECT_GT(forest_f1, 0.75);
}

TEST(RandomForestTest, SingleClassDataPredictsPrior) {
  RandomForest forest((RandomForestOptions()));
  linalg::Matrix x = {{0.1}, {0.2}};
  ASSERT_TRUE(forest.Fit(x, {1, 1}).ok());
  EXPECT_DOUBLE_EQ(forest.PredictProba({0.5}), 1.0);
}

TEST(RandomForestTest, DeterministicForSeed) {
  const data::Dataset train = testing::MakeLinearDataset(150, 2, 40);
  RandomForestOptions options;
  options.seed = 5;
  RandomForest a(options), b(options);
  ASSERT_TRUE(a.Fit(ToMatrix(train), train.labels()).ok());
  ASSERT_TRUE(b.Fit(ToMatrix(train), train.labels()).ok());
  for (int r = 0; r < 30; ++r) {
    const auto row = ToMatrix(train).Row(r);
    EXPECT_DOUBLE_EQ(a.PredictProba(row), b.PredictProba(row));
  }
}

}  // namespace
}  // namespace dfs::ml
