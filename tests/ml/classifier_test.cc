#include "ml/classifier.h"

#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <vector>

#include "metrics/classification.h"
#include "ml/dp/dp_classifier.h"
#include "ml/random_forest.h"
#include "testing/test_util.h"

namespace dfs::ml {
namespace {

// Shared harness: every classifier family must learn the linearly separable
// toy problem well above chance, clone correctly, and validate its inputs.
class ClassifierParamTest : public ::testing::TestWithParam<ModelKind> {};

linalg::Matrix ToMatrix(const data::Dataset& dataset) {
  return dataset.ToMatrix(dataset.AllFeatures());
}

TEST_P(ClassifierParamTest, LearnsSeparableProblem) {
  const data::Dataset train = testing::MakeLinearDataset(400, 3, 21);
  const data::Dataset test = testing::MakeLinearDataset(200, 3, 22);
  auto model = CreateClassifier(GetParam(), Hyperparameters());
  ASSERT_TRUE(model->Fit(ToMatrix(train), train.labels()).ok());
  const double f1 =
      metrics::F1Score(test.labels(), model->PredictBatch(ToMatrix(test)));
  EXPECT_GT(f1, 0.8) << model->name();
}

TEST_P(ClassifierParamTest, PredictionsMatchProbabilityThreshold) {
  const data::Dataset train = testing::MakeLinearDataset(200, 1, 23);
  auto model = CreateClassifier(GetParam(), Hyperparameters());
  ASSERT_TRUE(model->Fit(ToMatrix(train), train.labels()).ok());
  for (int r = 0; r < 50; ++r) {
    const auto row = ToMatrix(train).Row(r);
    const double proba = model->PredictProba(row);
    EXPECT_GE(proba, 0.0);
    EXPECT_LE(proba, 1.0);
    EXPECT_EQ(model->Predict(row), proba >= 0.5 ? 1 : 0);
  }
}

TEST_P(ClassifierParamTest, CloneIsUnfittedButTrainable) {
  const data::Dataset train = testing::MakeLinearDataset(150, 1, 24);
  auto model = CreateClassifier(GetParam(), Hyperparameters());
  ASSERT_TRUE(model->Fit(ToMatrix(train), train.labels()).ok());
  auto clone = model->Clone();
  ASSERT_NE(clone, nullptr);
  EXPECT_EQ(clone->name(), model->name());
  ASSERT_TRUE(clone->Fit(ToMatrix(train), train.labels()).ok());
  // Deterministic training: clone should agree with the original.
  int agreement = 0;
  for (int r = 0; r < train.num_rows(); ++r) {
    const auto row = ToMatrix(train).Row(r);
    agreement += model->Predict(row) == clone->Predict(row) ? 1 : 0;
  }
  EXPECT_GT(agreement, train.num_rows() * 9 / 10);
}

TEST_P(ClassifierParamTest, RejectsEmptyTrainingSet) {
  auto model = CreateClassifier(GetParam(), Hyperparameters());
  EXPECT_FALSE(model->Fit(linalg::Matrix(0, 3), {}).ok());
}

TEST_P(ClassifierParamTest, RejectsLabelSizeMismatch) {
  auto model = CreateClassifier(GetParam(), Hyperparameters());
  EXPECT_FALSE(model->Fit(linalg::Matrix(4, 2), {0, 1}).ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ClassifierParamTest,
    ::testing::Values(ModelKind::kLogisticRegression, ModelKind::kNaiveBayes,
                      ModelKind::kDecisionTree, ModelKind::kLinearSvm),
    [](const auto& info) { return ModelKindToString(info.param); });

// Every PredictProba implementation is a span kernel with a delegating
// std::vector shim; the two entry points must agree bitwise on every row,
// for every classifier family (4 standard + 3 DP variants + RF).
TEST(SpanPredictTest, SpanAndVectorPredictProbaAgreeEverywhere) {
  const data::Dataset train = testing::MakeLinearDataset(200, 2, 25);
  const linalg::Matrix x = ToMatrix(train);

  std::vector<std::unique_ptr<Classifier>> models;
  for (const auto kind :
       {ModelKind::kLogisticRegression, ModelKind::kNaiveBayes,
        ModelKind::kDecisionTree, ModelKind::kLinearSvm}) {
    models.push_back(CreateClassifier(kind, Hyperparameters()));
    models.push_back(
        CreateDpClassifier(kind, Hyperparameters(), /*epsilon=*/1.0, 91));
  }
  RandomForestOptions forest_options;
  forest_options.num_trees = 8;
  models.push_back(std::make_unique<RandomForest>(forest_options));

  for (const auto& model : models) {
    ASSERT_TRUE(model->Fit(x, train.labels()).ok()) << model->name();
    for (int r = 0; r < x.rows(); ++r) {
      const std::vector<double> row = x.Row(r);
      const std::span<const double> row_span = x.RowSpan(r);
      EXPECT_EQ(model->PredictProba(row), model->PredictProba(row_span))
          << model->name() << " row " << r;
      EXPECT_EQ(model->Predict(row), model->Predict(row_span))
          << model->name() << " row " << r;
    }
  }
}

// The output-parameter PredictBatch must produce exactly the allocating
// form's labels while reusing the caller's buffer.
TEST(SpanPredictTest, PredictBatchOutputParamMatchesAllocatingForm) {
  const data::Dataset train = testing::MakeLinearDataset(150, 1, 26);
  const linalg::Matrix x = ToMatrix(train);
  auto model = CreateClassifier(ModelKind::kLogisticRegression,
                                Hyperparameters());
  ASSERT_TRUE(model->Fit(x, train.labels()).ok());

  const std::vector<int> allocated = model->PredictBatch(x);
  std::vector<int> reused;
  model->PredictBatch(x, &reused);
  EXPECT_EQ(allocated, reused);
  const int* warm = reused.data();
  model->PredictBatch(x, &reused);
  EXPECT_EQ(allocated, reused);
  EXPECT_EQ(reused.data(), warm);  // steady state: no reallocation
}

TEST(ModelKindTest, Names) {
  EXPECT_STREQ(ModelKindToString(ModelKind::kLogisticRegression), "LR");
  EXPECT_STREQ(ModelKindToString(ModelKind::kNaiveBayes), "NB");
  EXPECT_STREQ(ModelKindToString(ModelKind::kDecisionTree), "DT");
  EXPECT_STREQ(ModelKindToString(ModelKind::kLinearSvm), "SVM");
}

}  // namespace
}  // namespace dfs::ml
