#include "ml/classifier.h"

#include <gtest/gtest.h>

#include "metrics/classification.h"
#include "testing/test_util.h"

namespace dfs::ml {
namespace {

// Shared harness: every classifier family must learn the linearly separable
// toy problem well above chance, clone correctly, and validate its inputs.
class ClassifierParamTest : public ::testing::TestWithParam<ModelKind> {};

linalg::Matrix ToMatrix(const data::Dataset& dataset) {
  return dataset.ToMatrix(dataset.AllFeatures());
}

TEST_P(ClassifierParamTest, LearnsSeparableProblem) {
  const data::Dataset train = testing::MakeLinearDataset(400, 3, 21);
  const data::Dataset test = testing::MakeLinearDataset(200, 3, 22);
  auto model = CreateClassifier(GetParam(), Hyperparameters());
  ASSERT_TRUE(model->Fit(ToMatrix(train), train.labels()).ok());
  const double f1 =
      metrics::F1Score(test.labels(), model->PredictBatch(ToMatrix(test)));
  EXPECT_GT(f1, 0.8) << model->name();
}

TEST_P(ClassifierParamTest, PredictionsMatchProbabilityThreshold) {
  const data::Dataset train = testing::MakeLinearDataset(200, 1, 23);
  auto model = CreateClassifier(GetParam(), Hyperparameters());
  ASSERT_TRUE(model->Fit(ToMatrix(train), train.labels()).ok());
  for (int r = 0; r < 50; ++r) {
    const auto row = ToMatrix(train).Row(r);
    const double proba = model->PredictProba(row);
    EXPECT_GE(proba, 0.0);
    EXPECT_LE(proba, 1.0);
    EXPECT_EQ(model->Predict(row), proba >= 0.5 ? 1 : 0);
  }
}

TEST_P(ClassifierParamTest, CloneIsUnfittedButTrainable) {
  const data::Dataset train = testing::MakeLinearDataset(150, 1, 24);
  auto model = CreateClassifier(GetParam(), Hyperparameters());
  ASSERT_TRUE(model->Fit(ToMatrix(train), train.labels()).ok());
  auto clone = model->Clone();
  ASSERT_NE(clone, nullptr);
  EXPECT_EQ(clone->name(), model->name());
  ASSERT_TRUE(clone->Fit(ToMatrix(train), train.labels()).ok());
  // Deterministic training: clone should agree with the original.
  int agreement = 0;
  for (int r = 0; r < train.num_rows(); ++r) {
    const auto row = ToMatrix(train).Row(r);
    agreement += model->Predict(row) == clone->Predict(row) ? 1 : 0;
  }
  EXPECT_GT(agreement, train.num_rows() * 9 / 10);
}

TEST_P(ClassifierParamTest, RejectsEmptyTrainingSet) {
  auto model = CreateClassifier(GetParam(), Hyperparameters());
  EXPECT_FALSE(model->Fit(linalg::Matrix(0, 3), {}).ok());
}

TEST_P(ClassifierParamTest, RejectsLabelSizeMismatch) {
  auto model = CreateClassifier(GetParam(), Hyperparameters());
  EXPECT_FALSE(model->Fit(linalg::Matrix(4, 2), {0, 1}).ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ClassifierParamTest,
    ::testing::Values(ModelKind::kLogisticRegression, ModelKind::kNaiveBayes,
                      ModelKind::kDecisionTree, ModelKind::kLinearSvm),
    [](const auto& info) { return ModelKindToString(info.param); });

TEST(ModelKindTest, Names) {
  EXPECT_STREQ(ModelKindToString(ModelKind::kLogisticRegression), "LR");
  EXPECT_STREQ(ModelKindToString(ModelKind::kNaiveBayes), "NB");
  EXPECT_STREQ(ModelKindToString(ModelKind::kDecisionTree), "DT");
  EXPECT_STREQ(ModelKindToString(ModelKind::kLinearSvm), "SVM");
}

}  // namespace
}  // namespace dfs::ml
