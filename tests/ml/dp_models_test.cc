#include <gtest/gtest.h>

#include "metrics/classification.h"
#include "ml/dp/dp_classifier.h"
#include "ml/dp/dp_decision_tree.h"
#include "ml/dp/dp_logistic_regression.h"
#include "ml/dp/dp_naive_bayes.h"
#include "testing/test_util.h"

namespace dfs::ml {
namespace {

linalg::Matrix ToMatrix(const data::Dataset& dataset) {
  return dataset.ToMatrix(dataset.AllFeatures());
}

double TestF1(Classifier& model, const data::Dataset& train,
              const data::Dataset& test) {
  if (!model.Fit(ToMatrix(train), train.labels()).ok()) return 0.0;
  return metrics::F1Score(test.labels(), model.PredictBatch(ToMatrix(test)));
}

// Property shared by all three DP mechanisms: large epsilon approaches the
// non-private model's quality; training rejects epsilon <= 0.
class DpModelParamTest : public ::testing::TestWithParam<ModelKind> {};

TEST_P(DpModelParamTest, LargeEpsilonKeepsUtility) {
  const data::Dataset train = testing::MakeLinearDataset(500, 2, 71);
  const data::Dataset test = testing::MakeLinearDataset(250, 2, 72);
  // Average across seeds: DP training is randomized by design.
  double generous = 0.0;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    auto model =
        CreateDpClassifier(GetParam(), Hyperparameters(), 10000.0, seed);
    generous += TestF1(*model, train, test);
  }
  EXPECT_GT(generous / 5.0, 0.65) << ModelKindToString(GetParam());
}

TEST_P(DpModelParamTest, TinyEpsilonDestroysUtility) {
  const data::Dataset train = testing::MakeLinearDataset(500, 2, 73);
  const data::Dataset test = testing::MakeLinearDataset(250, 2, 74);
  double generous = 0.0, strict = 0.0;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    auto loose =
        CreateDpClassifier(GetParam(), Hyperparameters(), 10000.0, seed);
    auto tight =
        CreateDpClassifier(GetParam(), Hyperparameters(), 0.001, seed);
    generous += TestF1(*loose, train, test);
    strict += TestF1(*tight, train, test);
  }
  // Stronger privacy must cost accuracy on average.
  EXPECT_GT(generous, strict) << ModelKindToString(GetParam());
}

TEST_P(DpModelParamTest, RejectsNonPositiveEpsilon) {
  auto model = CreateDpClassifier(GetParam(), Hyperparameters(), 0.0, 1);
  linalg::Matrix x = {{0.1}, {0.9}};
  EXPECT_FALSE(model->Fit(x, {0, 1}).ok());
}

TEST_P(DpModelParamTest, CloneKeepsEpsilonAndName) {
  auto model = CreateDpClassifier(GetParam(), Hyperparameters(), 2.0, 1);
  auto clone = model->Clone();
  EXPECT_EQ(clone->name(), model->name());
  EXPECT_NE(clone->name().find("DP-"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    AllDpModels, DpModelParamTest,
    ::testing::Values(ModelKind::kLogisticRegression, ModelKind::kNaiveBayes,
                      ModelKind::kDecisionTree),
    [](const auto& info) { return ModelKindToString(info.param); });

TEST(DpLogisticRegressionTest, NoiseIsDeterministicPerSeed) {
  const data::Dataset train = testing::MakeLinearDataset(200, 1, 75);
  DpLogisticRegression a(Hyperparameters(), 1.0, 9);
  DpLogisticRegression b(Hyperparameters(), 1.0, 9);
  ASSERT_TRUE(a.Fit(ToMatrix(train), train.labels()).ok());
  ASSERT_TRUE(b.Fit(ToMatrix(train), train.labels()).ok());
  for (size_t f = 0; f < a.weights().size(); ++f) {
    EXPECT_DOUBLE_EQ(a.weights()[f], b.weights()[f]);
  }
}

TEST(DpLogisticRegressionTest, DifferentSeedsDifferentNoise) {
  const data::Dataset train = testing::MakeLinearDataset(200, 1, 76);
  DpLogisticRegression a(Hyperparameters(), 1.0, 9);
  DpLogisticRegression b(Hyperparameters(), 1.0, 10);
  ASSERT_TRUE(a.Fit(ToMatrix(train), train.labels()).ok());
  ASSERT_TRUE(b.Fit(ToMatrix(train), train.labels()).ok());
  EXPECT_NE(a.weights()[0], b.weights()[0]);
}

TEST(DpDecisionTreeTest, StructureIsDataIndependent) {
  // Trees built on different data with the same seed share their structure;
  // only leaf statistics differ. Verified indirectly: predictions on one
  // tree change smoothly with epsilon but the same traversal succeeds.
  const data::Dataset train = testing::MakeLinearDataset(300, 1, 77);
  DpDecisionTree tree(Hyperparameters(), 5.0, 3);
  ASSERT_TRUE(tree.Fit(ToMatrix(train), train.labels()).ok());
  const auto row = ToMatrix(train).Row(0);
  const double proba = tree.PredictProba(row);
  EXPECT_GE(proba, 0.0);
  EXPECT_LE(proba, 1.0);
}

TEST(DpClassifierFactoryTest, SvmFallsBackToLinearMechanism) {
  auto model = CreateDpClassifier(ModelKind::kLinearSvm, Hyperparameters(),
                                  1.0, 1);
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->name(), "DP-LR");
}

}  // namespace
}  // namespace dfs::ml
