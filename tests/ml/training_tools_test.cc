#include <gtest/gtest.h>

#include "metrics/classification.h"
#include "ml/cross_validation.h"
#include "ml/grid_search.h"
#include "ml/permutation_importance.h"
#include "testing/test_util.h"

namespace dfs::ml {
namespace {

linalg::Matrix ToMatrix(const data::Dataset& dataset) {
  return dataset.ToMatrix(dataset.AllFeatures());
}

TEST(CrossValidationTest, HighF1OnSeparableData) {
  const data::Dataset dataset = testing::MakeLinearDataset(300, 1, 51);
  Rng rng(52);
  const auto prototype =
      CreateClassifier(ModelKind::kLogisticRegression, Hyperparameters());
  auto f1 = CrossValidatedF1(*prototype, ToMatrix(dataset), dataset.labels(),
                             3, rng);
  ASSERT_TRUE(f1.ok());
  EXPECT_GT(*f1, 0.8);
  EXPECT_LE(*f1, 1.0);
}

TEST(CrossValidationTest, NearChanceOnRandomLabels) {
  Rng label_rng(53);
  std::vector<std::vector<double>> columns(3, std::vector<double>(200));
  std::vector<int> labels(200), groups(200, 0);
  for (int r = 0; r < 200; ++r) {
    for (auto& column : columns) column[r] = label_rng.Uniform();
    labels[r] = label_rng.Bernoulli(0.5) ? 1 : 0;
  }
  auto dataset = data::Dataset::Create("rand", {"a", "b", "c"}, columns,
                                       labels, groups);
  ASSERT_TRUE(dataset.ok());
  Rng rng(54);
  const auto prototype =
      CreateClassifier(ModelKind::kDecisionTree, Hyperparameters());
  auto f1 = CrossValidatedF1(*prototype, dataset->ToMatrix({0, 1, 2}),
                             dataset->labels(), 4, rng);
  ASSERT_TRUE(f1.ok());
  EXPECT_LT(*f1, 0.75);
}

TEST(CrossValidationTest, ValidatesArguments) {
  const data::Dataset dataset = testing::MakeLinearDataset(60, 0, 55);
  Rng rng(56);
  const auto prototype =
      CreateClassifier(ModelKind::kNaiveBayes, Hyperparameters());
  EXPECT_FALSE(CrossValidatedF1(*prototype, ToMatrix(dataset),
                                dataset.labels(), 1, rng)
                   .ok());
  EXPECT_FALSE(CrossValidatedF1(*prototype, ToMatrix(dataset), {0, 1}, 3, rng)
                   .ok());
}

TEST(HyperparameterGridTest, MatchesPaperGrids) {
  // LR: C = 10^n, n in [-2, 3] -> 6 points.
  const auto lr = HyperparameterGrid(ModelKind::kLogisticRegression);
  ASSERT_EQ(lr.size(), 6u);
  EXPECT_DOUBLE_EQ(lr.front().lr_c, 0.01);
  EXPECT_DOUBLE_EQ(lr.back().lr_c, 1000.0);
  // NB: var_smoothing in [1e-12, 1e-6] -> 7 log-spaced points.
  const auto nb = HyperparameterGrid(ModelKind::kNaiveBayes);
  ASSERT_EQ(nb.size(), 7u);
  EXPECT_DOUBLE_EQ(nb.front().nb_var_smoothing, 1e-12);
  EXPECT_DOUBLE_EQ(nb.back().nb_var_smoothing, 1e-6);
  // DT: depth 1..7.
  const auto dt = HyperparameterGrid(ModelKind::kDecisionTree);
  ASSERT_EQ(dt.size(), 7u);
  EXPECT_EQ(dt.front().dt_max_depth, 1);
  EXPECT_EQ(dt.back().dt_max_depth, 7);
}

TEST(GridSearchTest, PicksBestByValidationF1) {
  const data::Dataset train = testing::MakeLinearDataset(300, 2, 57);
  const data::Dataset validation = testing::MakeLinearDataset(150, 2, 58);
  auto result = GridSearch(ModelKind::kDecisionTree, ToMatrix(train),
                           train.labels(), ToMatrix(validation),
                           validation.labels());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->evaluated_points, 7);
  EXPECT_GT(result->best_validation_f1, 0.8);
  ASSERT_NE(result->best_model, nullptr);
  // The returned model must reproduce the reported score.
  const double f1 = metrics::F1Score(
      validation.labels(), result->best_model->PredictBatch(ToMatrix(validation)));
  EXPECT_DOUBLE_EQ(f1, result->best_validation_f1);
}

TEST(GridSearchTest, BestIsNoWorseThanDefault) {
  const data::Dataset train = testing::MakeLinearDataset(250, 3, 59);
  const data::Dataset validation = testing::MakeLinearDataset(120, 3, 60);
  auto result =
      GridSearch(ModelKind::kLogisticRegression, ToMatrix(train),
                 train.labels(), ToMatrix(validation), validation.labels());
  ASSERT_TRUE(result.ok());
  auto default_model =
      CreateClassifier(ModelKind::kLogisticRegression, Hyperparameters());
  ASSERT_TRUE(default_model->Fit(ToMatrix(train), train.labels()).ok());
  const double default_f1 = metrics::F1Score(
      validation.labels(), default_model->PredictBatch(ToMatrix(validation)));
  EXPECT_GE(result->best_validation_f1 + 1e-9, default_f1);
}

TEST(PermutationImportanceTest, SignalFeaturesScoreHighest) {
  const data::Dataset dataset = testing::MakeLinearDataset(300, 4, 61);
  auto model =
      CreateClassifier(ModelKind::kLogisticRegression, Hyperparameters());
  ASSERT_TRUE(model->Fit(ToMatrix(dataset), dataset.labels()).ok());
  Rng rng(62);
  const auto importances = PermutationImportance(
      *model, ToMatrix(dataset), dataset.labels(), /*repeats=*/2, rng);
  ASSERT_EQ(importances.size(), 6u);
  for (size_t f = 2; f < importances.size(); ++f) {
    EXPECT_GT(importances[0], importances[f]);
    EXPECT_GT(importances[1], importances[f]);
  }
}

TEST(PermutationImportanceTest, NonNegativeAndEmptySafe) {
  const data::Dataset dataset = testing::MakeLinearDataset(100, 1, 63);
  auto model =
      CreateClassifier(ModelKind::kNaiveBayes, Hyperparameters());
  ASSERT_TRUE(model->Fit(ToMatrix(dataset), dataset.labels()).ok());
  Rng rng(64);
  for (double imp : PermutationImportance(*model, ToMatrix(dataset),
                                          dataset.labels(), 1, rng)) {
    EXPECT_GE(imp, 0.0);
  }
  EXPECT_TRUE(
      PermutationImportance(*model, linalg::Matrix(0, 0), {}, 1, rng).empty());
}

}  // namespace
}  // namespace dfs::ml
