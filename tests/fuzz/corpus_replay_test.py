#!/usr/bin/env python3
"""Corpus-replay driver (wired into ctest as fuzz.corpus_replay).

Regenerates the seed corpus with make_corpus.py, then runs every replay
binary passed on the command line over its target's corpus directory.
Each binary is a fuzz harness linked against replay_main.cc, so this
runs the exact LLVMFuzzerTestOneInput code under whatever sanitizers the
build enables — the decoders must accept or reject every seed without
crashing. Binary names map to corpus subdirectories by stripping the
fuzz_ prefix and _replay suffix (fuzz_arff_replay -> arff/).

Usage: corpus_replay_test.py <replay-binary>...
"""

import os
import re
import subprocess
import sys
import tempfile

FUZZ_DIR = os.path.dirname(os.path.abspath(__file__))
MAKE_CORPUS = os.path.join(FUZZ_DIR, "make_corpus.py")


def main():
    binaries = sys.argv[1:]
    if not binaries:
        raise SystemExit(__doc__)
    failures = 0
    with tempfile.TemporaryDirectory(prefix="dfs-fuzz-corpus-") as corpus:
        subprocess.run([sys.executable, MAKE_CORPUS, corpus], check=True)
        for binary in binaries:
            target = re.sub(r"^fuzz_|_replay$", "",
                            os.path.basename(binary))
            directory = os.path.join(corpus, target)
            if not os.path.isdir(directory):
                print(f"corpus_replay: FAIL {binary}: no corpus "
                      f"directory {directory}", flush=True)
                failures += 1
                continue
            result = subprocess.run([binary, directory],
                                    capture_output=True, text=True)
            if result.returncode != 0:
                print(f"corpus_replay: FAIL {target} "
                      f"(exit {result.returncode})\n"
                      f"{result.stdout}{result.stderr}", flush=True)
                failures += 1
            else:
                print(f"corpus_replay: {target}: "
                      f"{result.stdout.strip()}", flush=True)
    if failures:
        raise SystemExit(f"corpus_replay: {failures} target(s) failed")
    print(f"corpus_replay: OK ({len(binaries)} targets)")


if __name__ == "__main__":
    main()
