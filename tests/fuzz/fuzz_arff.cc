// Fuzz harness for the ARFF reader (src/data/arff.h), the parser that
// ingests the paper's OpenML datasets. The attribute names match the
// make_corpus.py seeds so coverage reaches the target/sensitive
// resolution and row-decoding paths, not just header rejection.

#include <cstddef>
#include <cstdint>
#include <string>

#include "data/arff.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  (void)dfs::data::ParseArff(text, "class", "sensitive");
  return 0;
}
