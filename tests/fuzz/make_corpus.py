#!/usr/bin/env python3
"""Seed-corpus generator for the tests/fuzz/ harnesses.

Writes one subdirectory per fuzz target (line_protocol/, spill_decoder/,
arff/) under the output directory. The binary spill seeds are built to
the byte layout in docs/CACHE.md, with the format and suite versions
parsed out of the headers so the corpus cannot silently go stale; valid
seeds let the fuzzers (and the corpus-replay ctest) reach past header
rejection into the entry decoders.

Usage: make_corpus.py <output-dir>
"""

import os
import re
import struct
import sys

REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))

FNV_OFFSET = 0xCBF29CE484222325
FNV_PRIME = 0x100000001B3
MASK64 = (1 << 64) - 1


def constant_from(path, name):
    with open(os.path.join(REPO, path), encoding="utf-8") as handle:
        match = re.search(name + r"\s*=\s*(\d+)", handle.read())
    if not match:
        raise SystemExit(f"make_corpus: {name} not found in {path}")
    return int(match.group(1))


FORMAT_VERSION = constant_from("src/core/eval_cache.h",
                               "kEvalCacheFormatVersion")
SUITE_VERSION = constant_from("src/core/suite_version.h", "kSuiteVersion")


def fnv1a(data):
    digest = FNV_OFFSET
    for byte in data:
        digest = ((digest ^ byte) * FNV_PRIME) & MASK64
    return digest


def entry(mask_bits, bits_set, flags=0b111, seconds=0.25):
    packed = bytearray((mask_bits + 7) // 8)
    for bit in bits_set:
        packed[bit // 8] |= 1 << (bit % 8)
    body = struct.pack("<I", mask_bits) + bytes(packed)
    body += struct.pack("<B", flags)
    for value in (seconds, 0.1, -0.5, 0.9, 0.8, 0.7, 0.25):
        body += struct.pack("<d", value)
    body += struct.pack("<II", len(bits_set), mask_bits)
    return body


def cache_spill(entries, fingerprint=0, suite=SUITE_VERSION,
                version=FORMAT_VERSION, count=None, magic=b"DFSCACHE"):
    payload = b"".join(entries)
    header = magic
    header += struct.pack("<II", version, 0)
    header += struct.pack("<QQ", suite, fingerprint)
    header += struct.pack("<QQ", count if count is not None else len(entries),
                          fnv1a(payload))
    return header + payload


def registry_container(blobs, count=None, magic=b"DFSCREG1"):
    out = magic + struct.pack("<II", FORMAT_VERSION,
                              count if count is not None else len(blobs))
    for blob in blobs:
        out += struct.pack("<Q", len(blob)) + blob
    return out


def write(directory, name, data):
    if isinstance(data, str):
        data = data.encode("utf-8")
    with open(os.path.join(directory, name), "wb") as handle:
        handle.write(data)


def main():
    if len(sys.argv) != 2:
        raise SystemExit(__doc__)
    out = sys.argv[1]

    d = os.path.join(out, "line_protocol")
    os.makedirs(d, exist_ok=True)
    write(d, "ping", '{"op":"ping"}\n')
    write(d, "stats", '{"op":"stats"}')
    write(d, "status", '{"op":"status","id":7}')
    write(d, "submit", '{"op":"submit","dataset":"adult","model":"LR",'
                       '"strategy":"auto","min_f1":0.7,"budget":5,'
                       '"max_features":0.5,"hpo":false,"seed":42}')
    write(d, "escapes", '{"op":"submit","dataset":"a\\"b\\\\c\\n"}')
    write(d, "bad_json", '{"op":"submit","dataset"')
    write(d, "bad_types", '{"op":42,"id":"seven","min_f1":"high"}')
    write(d, "huge_number", '{"op":"status","id":1e308}')
    write(d, "empty", "")
    write(d, "not_json", "GET / HTTP/1.1")

    d = os.path.join(out, "spill_decoder")
    os.makedirs(d, exist_ok=True)
    two = [entry(64, [0, 3, 17]), entry(64, [1, 2])]
    write(d, "valid_two_entries", cache_spill(two))
    write(d, "valid_empty", cache_spill([]))
    write(d, "wide_mask", cache_spill([entry(256, [0, 128, 255])]))
    write(d, "bad_magic", cache_spill(two, magic=b"NOTCACHE"))
    write(d, "stale_suite", cache_spill(two, suite=SUITE_VERSION + 1))
    write(d, "overclaimed_count", cache_spill(two, count=1 << 60))
    write(d, "truncated", cache_spill(two)[:-9])
    write(d, "header_only", cache_spill(two)[:48])
    write(d, "valid_registry",
          registry_container([cache_spill(two), cache_spill([entry(8, [2])],
                                                            fingerprint=9)]))
    write(d, "registry_overclaimed",
          registry_container([cache_spill(two)], count=0xFFFFFFFF))
    write(d, "registry_truncated",
          registry_container([cache_spill(two)])[:-5])

    d = os.path.join(out, "arff")
    os.makedirs(d, exist_ok=True)
    write(d, "valid", "\n".join([
        "% a minimal dataset the reader accepts end to end",
        "@RELATION toy",
        "@ATTRIBUTE age NUMERIC",
        "@ATTRIBUTE sensitive {0,1}",
        "@ATTRIBUTE colour {red,green,blue}",
        "@ATTRIBUTE class {no,yes}",
        "@DATA",
        "39,0,red,no",
        "45,1,'green',yes",
        "?,0,\"blue\",no",
        "",
    ]))
    write(d, "sparse_rejected", "\n".join([
        "@RELATION toy",
        "@ATTRIBUTE class {no,yes}",
        "@DATA",
        "{0 yes}",
        "",
    ]))
    write(d, "no_data_section",
          "@RELATION toy\n@ATTRIBUTE class {no,yes}\n")
    write(d, "ragged_rows", "\n".join([
        "@RELATION toy",
        "@ATTRIBUTE a NUMERIC",
        "@ATTRIBUTE class {no,yes}",
        "@DATA",
        "1,no,extra",
        "2",
        "",
    ]))
    write(d, "weird_bytes", b"@RELATION \xff\xfe\n@DATA\n\x00\x01\x02\n")
    print(f"make_corpus: wrote seeds under {out}")


if __name__ == "__main__":
    main()
