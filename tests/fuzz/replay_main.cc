// Standalone corpus-replay driver: gives every fuzz harness a main()
// that runs each corpus file through LLVMFuzzerTestOneInput exactly
// once, with no libFuzzer (and therefore no Clang) required. This is
// what ctest's fuzz.corpus_replay runs on every build — including the
// -DDFS_SANITIZE=address,undefined tree, where it doubles as a
// sanitized regression net over the committed seed corpus.
//
// Usage: <binary> <file-or-directory>...   (directories are walked
// recursively; non-regular files are skipped).

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

bool ReplayFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "replay: cannot open %s\n", path.c_str());
    return false;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <file-or-directory>...\n", argv[0]);
    return 2;
  }
  size_t replayed = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path root(argv[i]);
    std::error_code ec;
    if (std::filesystem::is_directory(root, ec)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(root)) {
        if (!entry.is_regular_file()) continue;
        if (!ReplayFile(entry.path())) return 1;
        ++replayed;
      }
    } else if (std::filesystem::is_regular_file(root, ec)) {
      if (!ReplayFile(root)) return 1;
      ++replayed;
    } else {
      std::fprintf(stderr, "replay: no such file or directory: %s\n",
                   argv[i]);
      return 2;
    }
  }
  std::printf("replay: OK (%zu input%s)\n", replayed,
              replayed == 1 ? "" : "s");
  return 0;
}
