// Fuzz harness for the serve-layer line protocol (docs/PROTOCOL.md):
// ParseJsonLine (the one-line JSON reader every request goes through)
// and ParseRequestLine (field validation on top of it). Both must
// reject arbitrary bytes with a Status — never crash, hang, or trip
// ASan/UBSan. Built with libFuzzer under -DDFS_FUZZ=ON (Clang); the
// same entry point links against replay_main.cc as the always-built
// corpus-replay binary (ctest: fuzz.corpus_replay).

#include <cstddef>
#include <cstdint>
#include <string>

#include "serve/line_protocol.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string line(reinterpret_cast<const char*>(data), size);
  // Values are intentionally discarded: the property under test is
  // "parsers are total over arbitrary bytes".
  (void)dfs::serve::ParseJsonLine(line);
  (void)dfs::serve::ParseRequestLine(line);
  return 0;
}
