// Fuzz harness for the binary eval-cache spill decoders (docs/CACHE.md):
// ShardedEvalCache::RestoreState (DFSCACHE single-cache spill) and
// EvalCacheRegistry::RestoreFromString (DFSCREG1 container). The magics
// differ, so feeding the same input to both costs one cheap rejection
// and lets one corpus cover both formats. Decoders must reject hostile
// bytes with a Status — never crash, over-allocate from unvalidated
// header counts, or read out of bounds.

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/eval_cache.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string blob(reinterpret_cast<const char*>(data), size);
  {
    // Fingerprint 0 matches what make_corpus.py writes into the valid
    // seeds, so coverage reaches past the fingerprint check.
    dfs::core::ShardedEvalCache cache(
        dfs::core::EvalCacheOptions{.fingerprint = 0});
    (void)cache.RestoreState(blob);
  }
  {
    dfs::core::EvalCacheRegistry registry;
    (void)registry.RestoreFromString(blob, "<fuzz>");
  }
  return 0;
}
