#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

namespace dfs {
namespace {

TEST(ThreadPoolTest, RunsEveryScheduledTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ThreadPoolTest, WaitCanBeRepeated) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Schedule([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Schedule([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, AtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.num_threads(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    // One worker and a slow head task, so most tasks are still queued when
    // the destructor starts; they must still all run.
    ThreadPool pool(1);
    pool.Schedule([] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    });
    for (int i = 0; i < 50; ++i) {
      pool.Schedule([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ConcurrentSchedulersAreSafe) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&pool, &counter] {
      for (int i = 0; i < 50; ++i) {
        pool.Schedule([&counter] { counter.fetch_add(1); });
      }
    });
  }
  for (auto& producer : producers) producer.join();
  pool.Wait();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, TasksRunOnWorkerThreads) {
  ThreadPool pool(2);
  std::mutex mu;
  std::set<std::thread::id> ids;
  for (int i = 0; i < 32; ++i) {
    pool.Schedule([&mu, &ids] {
      std::lock_guard<std::mutex> lock(mu);
      ids.insert(std::this_thread::get_id());
    });
  }
  pool.Wait();
  EXPECT_FALSE(ids.empty());
  EXPECT_EQ(ids.count(std::this_thread::get_id()), 0u);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(64);
  ParallelFor(64, 4, [&hits](int i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ParallelForTest, SingleThreadRunsInlineInOrder) {
  std::vector<int> order;
  ParallelFor(5, 1, [&order](int i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, ZeroCountIsANoop) {
  int calls = 0;
  ParallelFor(0, 4, [&calls](int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

}  // namespace
}  // namespace dfs
