#include "util/status.h"

#include <gtest/gtest.h>

#include "util/statusor.h"

namespace dfs {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = InvalidArgumentError("bad input");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad input");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad input");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(DeadlineExceededError("x").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(CancelledError("x").code(), StatusCode::kCancelled);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(OkStatus(), Status());
  EXPECT_EQ(InvalidArgumentError("a"), InvalidArgumentError("a"));
  EXPECT_FALSE(InvalidArgumentError("a") == InvalidArgumentError("b"));
  EXPECT_FALSE(InvalidArgumentError("a") == NotFoundError("a"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
               "DEADLINE_EXCEEDED");
}

Status FailIfNegative(int value) {
  if (value < 0) return InvalidArgumentError("negative");
  return OkStatus();
}

Status Chained(int value) {
  DFS_RETURN_IF_ERROR(FailIfNegative(value));
  return OkStatus();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_EQ(Chained(-1).code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> value = 42;
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value.value(), 42);
  EXPECT_EQ(*value, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> value = NotFoundError("missing");
  EXPECT_FALSE(value.ok());
  EXPECT_EQ(value.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> value = std::make_unique<int>(7);
  ASSERT_TRUE(value.ok());
  std::unique_ptr<int> extracted = std::move(value).value();
  EXPECT_EQ(*extracted, 7);
}

StatusOr<int> ParsePositive(int value) {
  if (value <= 0) return InvalidArgumentError("not positive");
  return value;
}

StatusOr<int> DoubledPositive(int value) {
  DFS_ASSIGN_OR_RETURN(int parsed, ParsePositive(value));
  return parsed * 2;
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  auto ok = DoubledPositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  auto error = DoubledPositive(-1);
  EXPECT_FALSE(error.ok());
  EXPECT_EQ(error.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrDeathTest, ValueOnErrorAborts) {
  StatusOr<int> value = InternalError("boom");
  EXPECT_DEATH((void)value.value(), "boom");
}

}  // namespace
}  // namespace dfs
