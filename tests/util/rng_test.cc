#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/math_util.h"

namespace dfs {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next() ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-2.5, 3.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 3.5);
  }
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(5);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(2, 5));
  EXPECT_EQ(seen, (std::set<int>{2, 3, 4, 5}));
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(6);
  EXPECT_EQ(rng.UniformInt(9, 9), 9);
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(8);
  std::vector<double> samples(20000);
  for (auto& s : samples) s = rng.Normal();
  EXPECT_NEAR(Mean(samples), 0.0, 0.05);
  EXPECT_NEAR(Variance(samples), 1.0, 0.06);
}

TEST(RngTest, NormalWithParameters) {
  Rng rng(9);
  std::vector<double> samples(20000);
  for (auto& s : samples) s = rng.Normal(10.0, 2.0);
  EXPECT_NEAR(Mean(samples), 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(Variance(samples)), 2.0, 0.1);
}

TEST(RngTest, LaplaceIsSymmetricWithExpectedScale) {
  Rng rng(10);
  std::vector<double> samples(20000);
  for (auto& s : samples) s = rng.Laplace(2.0);
  EXPECT_NEAR(Mean(samples), 0.0, 0.1);
  // Var of Laplace(b) = 2 b^2 = 8.
  EXPECT_NEAR(Variance(samples), 8.0, 0.8);
}

TEST(RngTest, LogNormalIsPositive) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.LogNormal(0.0, 1.0), 0.0);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(12);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(13);
  std::vector<double> weights = {1.0, 3.0, 0.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[1] / 8000.0, 0.75, 0.03);
}

TEST(RngTest, CategoricalAllZeroWeightsIsUniform) {
  Rng rng(14);
  std::vector<double> weights = {0.0, 0.0};
  int count0 = 0;
  for (int i = 0; i < 4000; ++i) count0 += rng.Categorical(weights) == 0;
  EXPECT_NEAR(count0 / 4000.0, 0.5, 0.05);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(15);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7};
  auto shuffled = values;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(16);
  const auto sample = rng.SampleWithoutReplacement(20, 8);
  EXPECT_EQ(sample.size(), 8u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 8u);
  for (int v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 20);
  }
}

TEST(RngTest, SampleWithoutReplacementWholePopulation) {
  Rng rng(17);
  const auto sample = rng.SampleWithoutReplacement(5, 10);
  EXPECT_EQ(sample.size(), 5u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(18);
  Rng fork = a.Fork();
  // The fork should not replay the parent's stream.
  Rng b(18);
  b.Next();  // parent consumed one draw to fork
  int same = 0;
  for (int i = 0; i < 32; ++i) same += fork.Next() == b.Next() ? 1 : 0;
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace dfs
