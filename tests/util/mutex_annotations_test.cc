// Tests for the annotated synchronization wrappers (util/mutex.h,
// DESIGN.md §2f). Part of util_test, which scripts/check.sh --sanitize
// runs under TSan: the concurrent cases double as a dynamic check that
// the wrappers add no behavior over the std primitives they hold — the
// annotations must change nothing at runtime.

#include "util/mutex.h"

#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/thread_annotations.h"

namespace dfs::util {
namespace {

TEST(MutexTest, LockUnlockRoundTrip) {
  Mutex mu;
  mu.Lock();
  mu.Unlock();
  mu.Lock();
  mu.Unlock();
}

TEST(MutexTest, TryLockSucceedsWhenFree) {
  Mutex mu;
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, TryLockFailsWhenHeldElsewhere) {
  Mutex mu;
  mu.Lock();
  bool other_acquired = true;
  // try_lock on a mutex the same thread holds is UB; probe from another
  // thread instead.
  std::thread prober([&] { other_acquired = mu.TryLock(); });
  prober.join();
  EXPECT_FALSE(other_acquired);
  mu.Unlock();
}

TEST(MutexTest, GuardedCounterSurvivesContendedIncrements) {
  Mutex mu;
  int counter DFS_GUARDED_BY(mu) = 0;
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  MutexLock lock(mu);
  EXPECT_EQ(counter, kThreads * kIncrementsPerThread);
}

TEST(MutexLockTest, ReleasesOnScopeExit) {
  Mutex mu;
  {
    MutexLock lock(mu);
  }
  // If the scope above leaked the lock this would deadlock; TryLock from
  // a helper thread keeps the failure mode a test failure instead.
  bool reacquired = false;
  std::thread prober([&] {
    reacquired = mu.TryLock();
    if (reacquired) mu.Unlock();
  });
  prober.join();
  EXPECT_TRUE(reacquired);
}

TEST(CondVarTest, WaitWakesOnNotifyWithGuardedFlag) {
  Mutex mu;
  CondVar cv;
  bool ready DFS_GUARDED_BY(mu) = false;

  std::thread producer([&] {
    MutexLock lock(mu);
    ready = true;
    cv.NotifyOne();
  });

  {
    MutexLock lock(mu);
    while (!ready) cv.Wait(lock);
    EXPECT_TRUE(ready);
  }
  producer.join();
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go DFS_GUARDED_BY(mu) = false;
  int awake DFS_GUARDED_BY(mu) = 0;
  constexpr int kWaiters = 4;

  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(mu);
      while (!go) cv.Wait(lock);
      ++awake;
    });
  }
  {
    MutexLock lock(mu);
    go = true;
    cv.NotifyAll();
  }
  for (auto& waiter : waiters) waiter.join();
  MutexLock lock(mu);
  EXPECT_EQ(awake, kWaiters);
}

TEST(CondVarTest, WaitUntilReportsTimeout) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(10);
  // Nothing ever notifies: the deadline must pass and WaitUntil must say
  // so (false), with the lock re-acquired (we still hold it to destruct).
  EXPECT_FALSE(cv.WaitUntil(lock, deadline));
  EXPECT_GE(std::chrono::steady_clock::now(), deadline);
}

TEST(CondVarTest, WaitForReportsTimeout) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  EXPECT_FALSE(cv.WaitFor(lock, 0.01));
}

TEST(CondVarTest, WaitUntilReportsSignalBeforeDeadline) {
  Mutex mu;
  CondVar cv;
  bool ready DFS_GUARDED_BY(mu) = false;

  std::thread producer([&] {
    MutexLock lock(mu);
    ready = true;
    cv.NotifyOne();
  });

  bool saw_signal = false;
  {
    MutexLock lock(mu);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(30);
    while (!ready) {
      if (!cv.WaitUntil(lock, deadline)) break;  // timeout: fail below
    }
    saw_signal = ready;
  }
  producer.join();
  EXPECT_TRUE(saw_signal);
}

}  // namespace
}  // namespace dfs::util
