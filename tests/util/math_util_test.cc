#include "util/math_util.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dfs {
namespace {

TEST(SigmoidTest, Midpoint) { EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5); }

TEST(SigmoidTest, SymmetricTails) {
  EXPECT_NEAR(Sigmoid(3.0) + Sigmoid(-3.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(100.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-100.0), 0.0, 1e-12);
}

TEST(SigmoidTest, NoOverflowOnExtremeInputs) {
  EXPECT_TRUE(std::isfinite(Sigmoid(1e6)));
  EXPECT_TRUE(std::isfinite(Sigmoid(-1e6)));
}

TEST(SafeLogTest, ClampsAtZero) {
  EXPECT_TRUE(std::isfinite(SafeLog(0.0)));
  EXPECT_DOUBLE_EQ(SafeLog(1.0), 0.0);
}

TEST(MeanVarianceTest, KnownValues) {
  std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(values), 2.5);
  EXPECT_DOUBLE_EQ(Variance(values), 1.25);
  EXPECT_NEAR(SampleStdDev(values), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(MeanVarianceTest, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
  EXPECT_DOUBLE_EQ(SampleStdDev({5.0}), 0.0);
}

TEST(QuantileTest, MedianAndExtremes) {
  std::vector<double> values = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(Quantile(values, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 1.0), 3.0);
}

TEST(QuantileTest, Interpolates) {
  std::vector<double> values = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(Quantile(values, 0.25), 2.5);
}

TEST(PearsonTest, PerfectCorrelation) {
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y = {2, 4, 6, 8};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  std::vector<double> neg = {8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, neg), -1.0, 1e-12);
}

TEST(PearsonTest, ConstantInputGivesZero) {
  std::vector<double> x = {1, 1, 1};
  std::vector<double> y = {1, 2, 3};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, y), 0.0);
}

TEST(ClampTest, Bounds) {
  EXPECT_DOUBLE_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(EntropyTest, UniformIsMaximal) {
  const double uniform = EntropyFromCounts({10, 10, 10, 10});
  EXPECT_NEAR(uniform, std::log(4.0), 1e-12);
  EXPECT_LT(EntropyFromCounts({37, 1, 1, 1}), uniform);
  EXPECT_DOUBLE_EQ(EntropyFromCounts({5, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(EntropyFromCounts({}), 0.0);
}

TEST(EqualWidthBinsTest, BinsSpanRange) {
  std::vector<double> values = {0.0, 0.25, 0.5, 0.75, 1.0};
  const auto bins = EqualWidthBins(values, 4);
  EXPECT_EQ(bins, (std::vector<int>{0, 1, 2, 3, 3}));
}

TEST(EqualWidthBinsTest, ConstantColumnAllZero) {
  const auto bins = EqualWidthBins({2.0, 2.0, 2.0}, 5);
  EXPECT_EQ(bins, (std::vector<int>{0, 0, 0}));
}

TEST(MutualInformationTest, IndependentIsZero) {
  // x alternates, y constant-ish independent pattern.
  std::vector<int> x = {0, 1, 0, 1, 0, 1, 0, 1};
  std::vector<int> y = {0, 0, 1, 1, 0, 0, 1, 1};
  EXPECT_NEAR(DiscreteMutualInformation(x, y), 0.0, 1e-12);
}

TEST(MutualInformationTest, IdenticalEqualsEntropy) {
  std::vector<int> x = {0, 1, 0, 1, 1, 1};
  EXPECT_NEAR(DiscreteMutualInformation(x, x), DiscreteEntropy(x), 1e-12);
}

TEST(SymmetricalUncertaintyTest, RangeAndExtremes) {
  std::vector<int> x = {0, 1, 0, 1};
  std::vector<int> y = {1, 0, 1, 0};
  EXPECT_NEAR(SymmetricalUncertainty(x, y), 1.0, 1e-12);  // determined
  std::vector<int> constant = {0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(SymmetricalUncertainty(x, constant), 0.0);
}

TEST(ArgsortTest, DescendingAndAscending) {
  std::vector<double> values = {0.3, 0.9, 0.1};
  EXPECT_EQ(ArgsortDescending(values), (std::vector<int>{1, 0, 2}));
  EXPECT_EQ(ArgsortAscending(values), (std::vector<int>{2, 0, 1}));
}

TEST(ArgsortTest, StableOnTies) {
  std::vector<double> values = {0.5, 0.5, 0.5};
  EXPECT_EQ(ArgsortDescending(values), (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace dfs
