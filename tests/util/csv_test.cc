#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace dfs {
namespace {

TEST(CsvTest, ParsesSimpleTable) {
  auto table = ParseCsv("a,b\n1,2\n3,4\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->header, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(table->num_rows(), 2);
  EXPECT_EQ(table->rows[1][0], "3");
}

TEST(CsvTest, HandlesMissingTrailingNewline) {
  auto table = ParseCsv("a,b\n1,2");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 1);
}

TEST(CsvTest, HandlesQuotedFields) {
  auto table = ParseCsv("name,notes\nx,\"a, b\"\ny,\"line\nbreak\"\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0][1], "a, b");
  EXPECT_EQ(table->rows[1][1], "line\nbreak");
}

TEST(CsvTest, HandlesEscapedQuotes) {
  auto table = ParseCsv("a\n\"he said \"\"hi\"\"\"\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0][0], "he said \"hi\"");
}

TEST(CsvTest, HandlesCrLf) {
  auto table = ParseCsv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0][1], "2");
}

TEST(CsvTest, RejectsRaggedRows) {
  EXPECT_FALSE(ParseCsv("a,b\n1\n").ok());
}

TEST(CsvTest, RejectsUnterminatedQuote) {
  EXPECT_FALSE(ParseCsv("a\n\"open\n").ok());
}

TEST(CsvTest, RejectsEmptyInput) { EXPECT_FALSE(ParseCsv("").ok()); }

TEST(CsvTest, ColumnIndexLookup) {
  auto table = ParseCsv("alpha,beta\n1,2\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->ColumnIndex("beta"), 1);
  EXPECT_EQ(table->ColumnIndex("gamma"), -1);
}

TEST(CsvTest, WriteRoundTrip) {
  CsvTable table;
  table.header = {"id", "text"};
  table.rows = {{"1", "plain"}, {"2", "with, comma"}, {"3", "with \"quote\""}};
  auto parsed = ParseCsv(WriteCsv(table));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->rows, table.rows);
}

TEST(CsvTest, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "dfs_csv_test.csv").string();
  CsvTable table;
  table.header = {"k", "v"};
  table.rows = {{"a", "1"}};
  ASSERT_TRUE(WriteCsvFile(table, path).ok());
  auto loaded = ReadCsvFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->rows, table.rows);
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFileFails) {
  EXPECT_FALSE(ReadCsvFile("/nonexistent/definitely_missing.csv").ok());
}

}  // namespace
}  // namespace dfs
