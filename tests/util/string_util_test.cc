#include "util/string_util.h"

#include <gtest/gtest.h>

namespace dfs {
namespace {

TEST(SplitTest, Basic) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split(",a,", ','), (std::vector<std::string>{"", "a", ""}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(JoinTest, RoundTripsWithSplit) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ","), "x,y,z");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StripTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Strip("  hello \t\n"), "hello");
  EXPECT_EQ(Strip("none"), "none");
  EXPECT_EQ(Strip("   "), "");
}

TEST(ToLowerTest, AsciiOnly) {
  EXPECT_EQ(ToLower("HeLLo 123"), "hello 123");
}

TEST(StartsEndsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("feature_selection", "feature"));
  EXPECT_FALSE(StartsWith("fs", "feature"));
  EXPECT_TRUE(EndsWith("report.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", "report.csv"));
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

TEST(FormatMeanStdTest, PaperStyle) {
  EXPECT_EQ(FormatMeanStd(0.6049, 0.2212), "0.60 ± 0.22");
}

}  // namespace
}  // namespace dfs
