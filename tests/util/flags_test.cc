#include "util/flags.h"

#include <gtest/gtest.h>

namespace dfs {
namespace {

struct ParsedFlags {
  std::string name = "default";
  double threshold = 0.5;
  int count = 3;
  bool verbose = false;
};

Status ParseInto(ParsedFlags& flags, std::vector<const char*> argv) {
  argv.insert(argv.begin(), "program");
  FlagParser parser("test");
  parser.AddString("name", "a name", &flags.name);
  parser.AddDouble("threshold", "a threshold", &flags.threshold);
  parser.AddInt("count", "a count", &flags.count);
  parser.AddBool("verbose", "verbosity", &flags.verbose);
  return parser.Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagParserTest, DefaultsSurviveEmptyArgv) {
  ParsedFlags flags;
  ASSERT_TRUE(ParseInto(flags, {}).ok());
  EXPECT_EQ(flags.name, "default");
  EXPECT_DOUBLE_EQ(flags.threshold, 0.5);
  EXPECT_EQ(flags.count, 3);
  EXPECT_FALSE(flags.verbose);
}

TEST(FlagParserTest, SpaceSeparatedValues) {
  ParsedFlags flags;
  ASSERT_TRUE(ParseInto(flags, {"--name", "abc", "--threshold", "0.75",
                                "--count", "7"})
                  .ok());
  EXPECT_EQ(flags.name, "abc");
  EXPECT_DOUBLE_EQ(flags.threshold, 0.75);
  EXPECT_EQ(flags.count, 7);
}

TEST(FlagParserTest, EqualsSeparatedValues) {
  ParsedFlags flags;
  ASSERT_TRUE(
      ParseInto(flags, {"--name=xyz", "--threshold=-1.5", "--count=-2"})
          .ok());
  EXPECT_EQ(flags.name, "xyz");
  EXPECT_DOUBLE_EQ(flags.threshold, -1.5);
  EXPECT_EQ(flags.count, -2);
}

TEST(FlagParserTest, BoolForms) {
  ParsedFlags flags;
  ASSERT_TRUE(ParseInto(flags, {"--verbose"}).ok());
  EXPECT_TRUE(flags.verbose);
  flags.verbose = true;
  ASSERT_TRUE(ParseInto(flags, {"--verbose=false"}).ok());
  EXPECT_FALSE(flags.verbose);
  ASSERT_TRUE(ParseInto(flags, {"--verbose=1"}).ok());
  EXPECT_TRUE(flags.verbose);
}

TEST(FlagParserTest, CollectsPositionals) {
  ParsedFlags flags;
  std::vector<const char*> argv = {"program", "input.csv", "--count", "2",
                                   "more"};
  FlagParser parser("test");
  parser.AddInt("count", "a count", &flags.count);
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(parser.positional(),
            (std::vector<std::string>{"input.csv", "more"}));
}

TEST(FlagParserTest, Errors) {
  ParsedFlags flags;
  EXPECT_FALSE(ParseInto(flags, {"--bogus", "1"}).ok());
  EXPECT_FALSE(ParseInto(flags, {"--count"}).ok());          // missing value
  EXPECT_FALSE(ParseInto(flags, {"--count", "abc"}).ok());   // not an int
  EXPECT_FALSE(ParseInto(flags, {"--threshold", "x"}).ok()); // not a number
  EXPECT_FALSE(ParseInto(flags, {"--verbose=maybe"}).ok());
}

TEST(FlagParserTest, HelpListsFlags) {
  ParsedFlags flags;
  FlagParser parser("my tool");
  parser.AddString("name", "the name to use", &flags.name);
  parser.AddBool("verbose", "print more", &flags.verbose);
  const std::string help = parser.Help();
  EXPECT_NE(help.find("my tool"), std::string::npos);
  EXPECT_NE(help.find("--name <string>"), std::string::npos);
  EXPECT_NE(help.find("the name to use"), std::string::npos);
  EXPECT_NE(help.find("--verbose"), std::string::npos);
}

TEST(FlagParserDeathTest, DuplicateRegistrationAborts) {
  FlagParser parser("test");
  ParsedFlags flags;
  parser.AddInt("count", "a", &flags.count);
  EXPECT_DEATH(parser.AddInt("count", "b", &flags.count), "duplicate flag");
}

}  // namespace
}  // namespace dfs
