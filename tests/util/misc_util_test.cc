#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

#include "util/stopwatch.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

namespace dfs {
namespace {

TEST(StopwatchTest, ElapsedIncreases) {
  Stopwatch stopwatch;
  const double first = stopwatch.ElapsedSeconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double second = stopwatch.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  EXPECT_GT(second, first);
}

TEST(StopwatchTest, RestartResets) {
  Stopwatch stopwatch;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  stopwatch.Restart();
  EXPECT_LT(stopwatch.ElapsedSeconds(), 0.01);
}

TEST(DeadlineTest, InfiniteNeverExpires) {
  const Deadline deadline = Deadline::Infinite();
  EXPECT_FALSE(deadline.Expired());
  EXPECT_TRUE(std::isinf(deadline.RemainingSeconds()));
}

TEST(DeadlineTest, ExpiresAfterDuration) {
  const Deadline deadline = Deadline::AfterSeconds(0.005);
  EXPECT_FALSE(deadline.Expired());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(deadline.Expired());
  EXPECT_LE(deadline.RemainingSeconds(), 0.0);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Schedule([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Schedule([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, MinimumOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
}

TEST(ParallelForTest, CoversAllIndicesMultiThreaded) {
  std::vector<std::atomic<int>> hits(50);
  ParallelFor(50, 4, [&](int i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ParallelForTest, SingleThreadRunsInOrder) {
  std::vector<int> order;
  ParallelFor(5, 1, [&](int i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, ZeroCountIsNoop) {
  ParallelFor(0, 4, [](int) { FAIL() << "should not run"; });
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter printer({"name", "v"});
  printer.AddRow({"a", "1.00"});
  printer.AddRow({"longer-name", "2"});
  const std::string output = printer.ToString();
  EXPECT_NE(output.find("| name        | v    |"), std::string::npos);
  EXPECT_NE(output.find("| longer-name | 2    |"), std::string::npos);
}

TEST(TablePrinterTest, SeparatorRendersRule) {
  TablePrinter printer({"a"});
  printer.AddRow({"x"});
  printer.AddSeparator();
  printer.AddRow({"y"});
  const std::string output = printer.ToString();
  // Header rule + explicit separator.
  size_t rules = 0;
  for (size_t pos = output.find("|--"); pos != std::string::npos;
       pos = output.find("|--", pos + 1)) {
    ++rules;
  }
  EXPECT_EQ(rules, 2u);
}

TEST(TablePrinterTest, CountsUtf8DisplayWidth) {
  TablePrinter printer({"v"});
  printer.AddRow({"0.60 ± 0.22"});  // multi-byte ±
  printer.AddRow({"0.60 + 0.22"});  // same display width in ASCII
  const std::string output = printer.ToString();
  // Both rows should produce identically-positioned trailing pipes.
  const size_t first_line = output.find("0.60 ±");
  const size_t second_line = output.find("0.60 +");
  ASSERT_NE(first_line, std::string::npos);
  ASSERT_NE(second_line, std::string::npos);
  const size_t end1 = output.find('\n', first_line);
  const size_t end2 = output.find('\n', second_line);
  const std::string row1 = output.substr(first_line, end1 - first_line);
  const std::string row2 = output.substr(second_line, end2 - second_line);
  EXPECT_EQ(row1.size() - 1, row2.size());  // ± is one byte wider than +
}

}  // namespace
}  // namespace dfs
