#include "data/raw_dataset.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dfs::data {
namespace {

CsvTable MakeTable() {
  CsvTable table;
  table.header = {"age", "city", "label", "sex"};
  table.rows = {
      {"34", "berlin", "1", "0"},
      {"", "hannover", "0", "1"},
      {"51.5", "", "1", "0"},
  };
  return table;
}

TEST(RawDatasetFromCsvTest, ParsesTargetAndSensitive) {
  auto raw = RawDatasetFromCsv(MakeTable(), "label", "sex", "d");
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw->target, (std::vector<int>{1, 0, 1}));
  EXPECT_EQ(raw->sensitive, (std::vector<int>{0, 1, 0}));
  EXPECT_EQ(raw->sensitive_attribute_name, "sex");
  EXPECT_EQ(raw->num_attributes(), 2);  // label/sex excluded
}

TEST(RawDatasetFromCsvTest, DetectsNumericWithMissing) {
  auto raw = RawDatasetFromCsv(MakeTable(), "label", "sex", "d");
  ASSERT_TRUE(raw.ok());
  const RawColumn& age = raw->columns[0];
  EXPECT_EQ(age.type, ColumnType::kNumeric);
  EXPECT_DOUBLE_EQ(age.numeric_values[0], 34.0);
  EXPECT_TRUE(std::isnan(age.numeric_values[1]));
  EXPECT_DOUBLE_EQ(age.numeric_values[2], 51.5);
}

TEST(RawDatasetFromCsvTest, DetectsCategorical) {
  auto raw = RawDatasetFromCsv(MakeTable(), "label", "sex", "d");
  ASSERT_TRUE(raw.ok());
  const RawColumn& city = raw->columns[1];
  EXPECT_EQ(city.type, ColumnType::kCategorical);
  EXPECT_EQ(city.categorical_values[1], "hannover");
  EXPECT_EQ(city.categorical_values[2], "");
}

TEST(RawDatasetFromCsvTest, MixedColumnFallsBackToCategorical) {
  CsvTable table = MakeTable();
  table.rows[0][0] = "not-a-number";
  auto raw = RawDatasetFromCsv(table, "label", "sex", "d");
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw->columns[0].type, ColumnType::kCategorical);
}

TEST(RawDatasetFromCsvTest, RejectsMissingColumns) {
  EXPECT_FALSE(RawDatasetFromCsv(MakeTable(), "nope", "sex", "d").ok());
  EXPECT_FALSE(RawDatasetFromCsv(MakeTable(), "label", "nope", "d").ok());
}

TEST(RawDatasetFromCsvTest, RejectsNonBinaryTarget) {
  CsvTable table = MakeTable();
  table.rows[0][2] = "2";
  EXPECT_FALSE(RawDatasetFromCsv(table, "label", "sex", "d").ok());
}

}  // namespace
}  // namespace dfs::data
