#include "data/split.h"

#include <gtest/gtest.h>

#include <set>

#include "testing/test_util.h"

namespace dfs::data {
namespace {

double PositiveRate(const std::vector<int>& labels) {
  double positives = 0;
  for (int y : labels) positives += y;
  return labels.empty() ? 0.0 : positives / labels.size();
}

TEST(StratifiedSplitTest, ProportionsRoughly311) {
  const Dataset dataset = testing::MakeLinearDataset(500, 2, 1);
  Rng rng(2);
  auto split = StratifiedSplit(dataset, 3, 1, 1, rng);
  ASSERT_TRUE(split.ok());
  EXPECT_NEAR(split->train.num_rows(), 300, 6);
  EXPECT_NEAR(split->validation.num_rows(), 100, 6);
  EXPECT_NEAR(split->test.num_rows(), 100, 6);
  EXPECT_EQ(split->train.num_rows() + split->validation.num_rows() +
                split->test.num_rows(),
            500);
}

TEST(StratifiedSplitTest, PreservesClassBalance) {
  const Dataset dataset = testing::MakeLinearDataset(600, 0, 3);
  Rng rng(4);
  auto split = StratifiedSplit(dataset, 3, 1, 1, rng);
  ASSERT_TRUE(split.ok());
  const double overall = dataset.PositiveRate();
  EXPECT_NEAR(PositiveRate(split->train.labels()), overall, 0.03);
  EXPECT_NEAR(PositiveRate(split->validation.labels()), overall, 0.05);
  EXPECT_NEAR(PositiveRate(split->test.labels()), overall, 0.05);
}

TEST(StratifiedSplitTest, PartsAreDisjointAndComplete) {
  // Use a dataset with a unique fingerprint per row (row index scaled).
  std::vector<double> fingerprint(100);
  std::vector<int> labels(100), groups(100, 0);
  for (int r = 0; r < 100; ++r) {
    fingerprint[r] = r / 99.0;
    labels[r] = r % 2;
  }
  auto dataset = Dataset::Create("fp", {"id"}, {fingerprint}, labels, groups);
  ASSERT_TRUE(dataset.ok());
  Rng rng(5);
  auto split = StratifiedSplit(*dataset, 3, 1, 1, rng);
  ASSERT_TRUE(split.ok());
  std::multiset<double> seen;
  for (const auto* part : {&split->train, &split->validation, &split->test}) {
    for (double v : part->Column(0)) seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 100u);
  std::set<double> unique(seen.begin(), seen.end());
  EXPECT_EQ(unique.size(), 100u);  // no duplication across parts
}

TEST(StratifiedSplitTest, EveryPartHasBothClasses) {
  const Dataset dataset = testing::MakeLinearDataset(60, 0, 6);
  Rng rng(7);
  auto split = StratifiedSplit(dataset, 3, 1, 1, rng);
  ASSERT_TRUE(split.ok());
  for (const auto* part : {&split->train, &split->validation, &split->test}) {
    const double rate = PositiveRate(part->labels());
    EXPECT_GT(rate, 0.0);
    EXPECT_LT(rate, 1.0);
  }
}

TEST(StratifiedSplitTest, RejectsBadProportions) {
  const Dataset dataset = testing::MakeLinearDataset(100, 0, 8);
  Rng rng(9);
  EXPECT_FALSE(StratifiedSplit(dataset, 0, 1, 1, rng).ok());
  EXPECT_FALSE(StratifiedSplit(dataset, 3, -1, 1, rng).ok());
}

TEST(StratifiedSplitTest, RejectsTooFewRowsPerClass) {
  auto dataset = Dataset::Create("small", {"x"}, {{0.1, 0.2, 0.3, 0.4}},
                                 {0, 0, 0, 1}, {0, 0, 0, 0});
  ASSERT_TRUE(dataset.ok());
  Rng rng(10);
  EXPECT_FALSE(StratifiedSplit(*dataset, 3, 1, 1, rng).ok());
}

TEST(StratifiedSampleTest, PreservesBalanceAndSize) {
  const Dataset dataset = testing::MakeLinearDataset(1000, 0, 11);
  Rng rng(12);
  const Dataset sample = StratifiedSample(dataset, 100, rng);
  EXPECT_NEAR(sample.num_rows(), 100, 3);
  EXPECT_NEAR(sample.PositiveRate(), dataset.PositiveRate(), 0.05);
}

TEST(StratifiedSampleTest, NoopWhenSampleLargerThanData) {
  const Dataset dataset = testing::MakeLinearDataset(50, 0, 13);
  Rng rng(14);
  EXPECT_EQ(StratifiedSample(dataset, 500, rng).num_rows(), 50);
}

TEST(StratifiedFoldsTest, FoldsPartitionRows) {
  std::vector<int> labels(90);
  for (int i = 0; i < 90; ++i) labels[i] = i % 3 == 0 ? 1 : 0;
  Rng rng(15);
  const auto folds = StratifiedFolds(labels, 5, rng);
  ASSERT_EQ(folds.size(), 5u);
  std::set<int> all;
  for (const auto& fold : folds) {
    for (int r : fold) {
      EXPECT_TRUE(all.insert(r).second) << "duplicate row " << r;
    }
  }
  EXPECT_EQ(all.size(), 90u);
}

TEST(StratifiedFoldsTest, FoldsAreClassBalanced) {
  std::vector<int> labels(100);
  for (int i = 0; i < 100; ++i) labels[i] = i < 40 ? 1 : 0;
  Rng rng(16);
  const auto folds = StratifiedFolds(labels, 4, rng);
  for (const auto& fold : folds) {
    int positives = 0;
    for (int r : fold) positives += labels[r];
    EXPECT_EQ(positives, 10);
  }
}

}  // namespace
}  // namespace dfs::data
