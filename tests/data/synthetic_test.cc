#include "data/synthetic.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/benchmark_suite.h"
#include "util/math_util.h"

namespace dfs::data {
namespace {

SyntheticSpec SmallSpec() {
  SyntheticSpec spec;
  spec.name = "unit";
  spec.sensitive_attribute = "Gender";
  spec.rows = 400;
  spec.informative_numeric = 3;
  spec.redundant_numeric = 2;
  spec.noise_numeric = 4;
  spec.proxy_features = 2;
  spec.categorical_attributes = 1;
  spec.categorical_cardinality = 3;
  return spec;
}

TEST(SyntheticTest, DeterministicForSameSeed) {
  const RawDataset a = GenerateRaw(SmallSpec(), 42);
  const RawDataset b = GenerateRaw(SmallSpec(), 42);
  ASSERT_EQ(a.target, b.target);
  ASSERT_EQ(a.sensitive, b.sensitive);
  ASSERT_EQ(a.columns.size(), b.columns.size());
  for (size_t c = 0; c < a.columns.size(); ++c) {
    if (a.columns[c].type == ColumnType::kNumeric) {
      for (size_t r = 0; r < a.columns[c].numeric_values.size(); ++r) {
        const double va = a.columns[c].numeric_values[r];
        const double vb = b.columns[c].numeric_values[r];
        EXPECT_TRUE((std::isnan(va) && std::isnan(vb)) || va == vb);
      }
    } else {
      EXPECT_EQ(a.columns[c].categorical_values,
                b.columns[c].categorical_values);
    }
  }
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  const RawDataset a = GenerateRaw(SmallSpec(), 1);
  const RawDataset b = GenerateRaw(SmallSpec(), 2);
  EXPECT_NE(a.target, b.target);
}

TEST(SyntheticTest, ShapesMatchSpec) {
  const SyntheticSpec spec = SmallSpec();
  const RawDataset raw = GenerateRaw(spec, 7);
  EXPECT_EQ(raw.num_rows(), 400);
  // sensitive + informative + redundant + proxy + noise + categorical cols
  EXPECT_EQ(raw.num_attributes(), 1 + 3 + 2 + 2 + 4 + 1);
}

TEST(SyntheticTest, RowScaleMultipliesRows) {
  const RawDataset raw = GenerateRaw(SmallSpec(), 7, 0.5);
  EXPECT_EQ(raw.num_rows(), 200);
  // Never below the 60-row floor.
  EXPECT_EQ(GenerateRaw(SmallSpec(), 7, 0.0001).num_rows(), 60);
}

TEST(SyntheticTest, BothClassesAndGroupsPresent) {
  const RawDataset raw = GenerateRaw(SmallSpec(), 9);
  std::set<int> labels(raw.target.begin(), raw.target.end());
  std::set<int> groups(raw.sensitive.begin(), raw.sensitive.end());
  EXPECT_EQ(labels.size(), 2u);
  EXPECT_EQ(groups.size(), 2u);
}

TEST(SyntheticTest, InformativeFeaturesCorrelateWithLabel) {
  const RawDataset raw = GenerateRaw(SmallSpec(), 11);
  std::vector<double> labels(raw.target.begin(), raw.target.end());
  // num_inf_0 has the largest weight.
  std::vector<double> informative;
  for (double v : raw.columns[1].numeric_values) {
    informative.push_back(std::isnan(v) ? 0.0 : v);
  }
  EXPECT_GT(std::fabs(PearsonCorrelation(informative, labels)), 0.25);
}

TEST(SyntheticTest, NoiseFeaturesUncorrelatedWithLabel) {
  const SyntheticSpec spec = SmallSpec();
  const RawDataset raw = GenerateRaw(spec, 11);
  std::vector<double> labels(raw.target.begin(), raw.target.end());
  // First noise column comes after sensitive+inf+red+proxy columns.
  const int noise_index = 1 + spec.informative_numeric +
                          spec.redundant_numeric + spec.proxy_features;
  ASSERT_EQ(raw.columns[noise_index].name, "num_noise_0");
  std::vector<double> noise;
  for (double v : raw.columns[noise_index].numeric_values) {
    noise.push_back(std::isnan(v) ? 0.0 : v);
  }
  EXPECT_LT(std::fabs(PearsonCorrelation(noise, labels)), 0.15);
}

TEST(SyntheticTest, ProxyFeaturesCorrelateWithSensitiveAttribute) {
  const SyntheticSpec spec = SmallSpec();
  const RawDataset raw = GenerateRaw(spec, 13);
  std::vector<double> sensitive(raw.sensitive.begin(), raw.sensitive.end());
  const int proxy_index =
      1 + spec.informative_numeric + spec.redundant_numeric;
  ASSERT_EQ(raw.columns[proxy_index].name, "num_proxy_0");
  std::vector<double> proxy;
  for (double v : raw.columns[proxy_index].numeric_values) {
    proxy.push_back(std::isnan(v) ? 0.0 : v);
  }
  EXPECT_GT(PearsonCorrelation(proxy, sensitive), 0.5);
}

TEST(SyntheticTest, GroupBiasDepressesMinorityPositiveRate) {
  SyntheticSpec spec = SmallSpec();
  spec.rows = 2000;
  spec.group_bias = 1.5;
  const RawDataset raw = GenerateRaw(spec, 15);
  double positive[2] = {0, 0}, count[2] = {0, 0};
  for (int r = 0; r < raw.num_rows(); ++r) {
    count[raw.sensitive[r]] += 1;
    positive[raw.sensitive[r]] += raw.target[r];
  }
  EXPECT_LT(positive[1] / count[1], positive[0] / count[0] - 0.1);
}

TEST(SyntheticTest, EncodedFeatureCountMatchesPreprocessedWidthApprox) {
  const SyntheticSpec spec = SmallSpec();
  auto dataset = GenerateDataset(spec, 17);
  ASSERT_TRUE(dataset.ok());
  // One-hot may add a <missing> column per categorical and drop constants,
  // so allow slack of (#categorical attrs) in each direction.
  EXPECT_NEAR(dataset->num_features(), spec.EncodedFeatureCount(),
              spec.categorical_attributes + 1);
}

TEST(BenchmarkSuiteTest, HasNineteenDatasetsInPaperOrder) {
  ASSERT_EQ(BenchmarkSize(), 19);
  const auto& specs = BenchmarkSpecs();
  EXPECT_EQ(specs.front().name, "Traffic Violations");
  EXPECT_EQ(specs.back().name, "Diabetic Mellitus");
  // Descending paper instance counts, as in Table 2.
  for (size_t i = 1; i < specs.size(); ++i) {
    EXPECT_GE(specs[i - 1].paper_instances, specs[i].paper_instances);
    EXPECT_GE(specs[i - 1].rows, specs[i].rows);
  }
}

TEST(BenchmarkSuiteTest, SensitiveAttributesMatchPaper) {
  EXPECT_EQ(BenchmarkSpecByName("COMPAS")->sensitive_attribute, "Race");
  EXPECT_EQ(BenchmarkSpecByName("Adult")->sensitive_attribute, "Gender");
  EXPECT_EQ(BenchmarkSpecByName("German Credit")->sensitive_attribute,
            "Nationality");
  EXPECT_FALSE(BenchmarkSpecByName("Iris").ok());
}

TEST(BenchmarkSuiteTest, GenerateBenchmarkDatasetWorksForAllIndices) {
  for (int i = 0; i < BenchmarkSize(); ++i) {
    auto dataset = GenerateBenchmarkDataset(i, 3, 0.1);
    ASSERT_TRUE(dataset.ok()) << "dataset " << i;
    EXPECT_GT(dataset->num_rows(), 0);
    EXPECT_GT(dataset->num_features(), 0);
  }
  EXPECT_FALSE(GenerateBenchmarkDataset(19).ok());
  EXPECT_FALSE(GenerateBenchmarkDataset(-1).ok());
}

TEST(BenchmarkSuiteTest, CompasIsSmallAndBiased) {
  const auto spec = BenchmarkSpecByName("COMPAS");
  ASSERT_TRUE(spec.ok());
  EXPECT_LE(spec->EncodedFeatureCount(), 25);
  EXPECT_GE(spec->group_bias, 1.0);
}

}  // namespace
}  // namespace dfs::data
