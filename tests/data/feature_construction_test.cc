#include "data/feature_construction.h"

#include <gtest/gtest.h>

#include "metrics/classification.h"
#include "ml/classifier.h"
#include "util/rng.h"

namespace dfs::data {
namespace {

// XOR-like task: the label depends on the product structure of (a, b), not
// on either feature alone — the canonical case where selection needs
// construction (Section 7).
Dataset MakeXorDataset(int rows, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> a(rows), b(rows), noise(rows);
  std::vector<int> labels(rows), groups(rows, 0);
  for (int r = 0; r < rows; ++r) {
    a[r] = rng.Uniform();
    b[r] = rng.Uniform();
    noise[r] = rng.Uniform();
    const bool high_a = a[r] > 0.5;
    const bool high_b = b[r] > 0.5;
    labels[r] = (high_a == high_b) ? 1 : 0;  // XNOR
    groups[r] = r % 2;
  }
  auto dataset = Dataset::Create("xor", {"a", "b", "noise"},
                                 {a, b, noise}, labels, groups);
  DFS_CHECK(dataset.ok());
  return std::move(dataset).value();
}

TEST(FeatureConstructionTest, AddsProductWithNamesAndScaling) {
  const Dataset xor_dataset = MakeXorDataset(400, 1);
  auto augmented = ConstructProductFeatures(xor_dataset);
  ASSERT_TRUE(augmented.ok());
  EXPECT_GT(augmented->num_features(), xor_dataset.num_features());
  // a*b must be among the constructions (it carries the XNOR signal).
  const auto& names = augmented->feature_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "a*b"), names.end());
  for (int f = xor_dataset.num_features(); f < augmented->num_features();
       ++f) {
    for (double v : augmented->Column(f)) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(FeatureConstructionTest, OriginalColumnsPreserved) {
  const Dataset xor_dataset = MakeXorDataset(200, 2);
  auto augmented = ConstructProductFeatures(xor_dataset);
  ASSERT_TRUE(augmented.ok());
  for (int f = 0; f < xor_dataset.num_features(); ++f) {
    EXPECT_EQ(augmented->Column(f), xor_dataset.Column(f));
    EXPECT_EQ(augmented->feature_names()[f], xor_dataset.feature_names()[f]);
  }
  EXPECT_EQ(augmented->labels(), xor_dataset.labels());
}

TEST(FeatureConstructionTest, ConstructionUnlocksXorForLinearModel) {
  const Dataset train = MakeXorDataset(600, 3);
  const Dataset test = MakeXorDataset(300, 4);
  auto model = ml::CreateClassifier(ml::ModelKind::kLogisticRegression,
                                    ml::Hyperparameters());
  // Plain features: linear model is near chance on XNOR.
  ASSERT_TRUE(model->Fit(train.ToMatrix(train.AllFeatures()),
                         train.labels())
                  .ok());
  const double plain_f1 = metrics::F1Score(
      test.labels(), model->PredictBatch(test.ToMatrix(test.AllFeatures())));

  // Fit the construction on train; apply the same plan to test.
  ProductFeaturePlan plan;
  auto train_augmented =
      ConstructProductFeatures(train, FeatureConstructionOptions(), &plan);
  ASSERT_TRUE(train_augmented.ok());
  auto test_augmented = ApplyProductFeatures(test, plan);
  ASSERT_TRUE(test_augmented.ok());
  ASSERT_EQ(train_augmented->feature_names(),
            test_augmented->feature_names());
  auto augmented_model = ml::CreateClassifier(
      ml::ModelKind::kLogisticRegression, ml::Hyperparameters());
  ASSERT_TRUE(augmented_model
                  ->Fit(train_augmented->ToMatrix(
                            train_augmented->AllFeatures()),
                        train_augmented->labels())
                  .ok());
  const double augmented_f1 = metrics::F1Score(
      test_augmented->labels(),
      augmented_model->PredictBatch(
          test_augmented->ToMatrix(test_augmented->AllFeatures())));
  EXPECT_GT(augmented_f1, plain_f1 + 0.05);
}

TEST(FeatureConstructionTest, BudgetCapsConstructions) {
  const Dataset xor_dataset = MakeXorDataset(200, 5);
  FeatureConstructionOptions options;
  options.max_constructed = 1;
  options.min_gain = -1.0;  // admit everything, then cap
  auto augmented = ConstructProductFeatures(xor_dataset, options);
  ASSERT_TRUE(augmented.ok());
  EXPECT_EQ(augmented->num_features(), xor_dataset.num_features() + 1);
}

TEST(FeatureConstructionTest, HighGainThresholdYieldsNoConstructions) {
  const Dataset xor_dataset = MakeXorDataset(200, 6);
  FeatureConstructionOptions options;
  options.min_gain = 10.0;  // impossible
  auto augmented = ConstructProductFeatures(xor_dataset, options);
  ASSERT_TRUE(augmented.ok());
  EXPECT_EQ(augmented->num_features(), xor_dataset.num_features());
}

TEST(FeatureConstructionTest, RejectsEmptyDataset) {
  Dataset empty;
  EXPECT_FALSE(ConstructProductFeatures(empty).ok());
}

TEST(FeatureConstructionTest, ApplyValidatesPlanIndices) {
  const Dataset xor_dataset = MakeXorDataset(100, 7);
  ProductFeaturePlan bad_plan;
  bad_plan.pairs = {{0, 99}};
  EXPECT_FALSE(ApplyProductFeatures(xor_dataset, bad_plan).ok());
}

TEST(FeatureConstructionTest, ApplyWithEmptyPlanIsIdentitySchema) {
  const Dataset xor_dataset = MakeXorDataset(100, 8);
  auto applied = ApplyProductFeatures(xor_dataset, ProductFeaturePlan());
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(applied->num_features(), xor_dataset.num_features());
}

}  // namespace
}  // namespace dfs::data
