#include "data/preprocess.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/raw_dataset.h"

namespace dfs::data {
namespace {

RawDataset MakeRaw() {
  RawDataset raw;
  raw.name = "raw";
  raw.sensitive_attribute_name = "g";
  raw.target = {0, 1, 0, 1};
  raw.sensitive = {0, 0, 1, 1};

  RawColumn numeric;
  numeric.name = "age";
  numeric.type = ColumnType::kNumeric;
  numeric.numeric_values = {10.0, 20.0, std::nan(""), 40.0};
  raw.columns.push_back(numeric);

  RawColumn categorical;
  categorical.name = "color";
  categorical.type = ColumnType::kCategorical;
  categorical.categorical_values = {"red", "blue", "red", ""};
  raw.columns.push_back(categorical);
  return raw;
}

TEST(PreprocessTest, NumericImputedWithMeanThenScaled) {
  auto dataset = Preprocess(MakeRaw());
  ASSERT_TRUE(dataset.ok());
  // age: mean of {10,20,40} = 23.33 imputed, then min-max to [0,1].
  const auto& age = dataset->Column(0);
  EXPECT_DOUBLE_EQ(age[0], 0.0);
  EXPECT_DOUBLE_EQ(age[3], 1.0);
  EXPECT_NEAR(age[2], (23.0 + 1.0 / 3.0 - 10.0) / 30.0, 1e-9);
}

TEST(PreprocessTest, CategoricalOneHotWithMissingCategory) {
  auto dataset = Preprocess(MakeRaw());
  ASSERT_TRUE(dataset.ok());
  const auto& names = dataset->feature_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "color=red"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "color=blue"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "color=<missing>"),
            names.end());
  // Indicators are one-hot: each row sums to 1 over color columns.
  for (int r = 0; r < dataset->num_rows(); ++r) {
    double sum = 0.0;
    for (int f = 0; f < dataset->num_features(); ++f) {
      if (names[f].rfind("color=", 0) == 0) sum += dataset->Value(r, f);
    }
    EXPECT_DOUBLE_EQ(sum, 1.0);
  }
}

TEST(PreprocessTest, DropsConstantColumns) {
  RawDataset raw = MakeRaw();
  RawColumn constant;
  constant.name = "const";
  constant.type = ColumnType::kNumeric;
  constant.numeric_values = {5.0, 5.0, 5.0, 5.0};
  raw.columns.push_back(constant);
  auto dataset = Preprocess(raw);
  ASSERT_TRUE(dataset.ok());
  const auto& names = dataset->feature_names();
  EXPECT_EQ(std::find(names.begin(), names.end(), "const"), names.end());
}

TEST(PreprocessTest, KeepsConstantColumnsWhenDisabled) {
  RawDataset raw = MakeRaw();
  RawColumn constant;
  constant.name = "const";
  constant.type = ColumnType::kNumeric;
  constant.numeric_values = {5.0, 5.0, 5.0, 5.0};
  raw.columns.push_back(constant);
  PreprocessOptions options;
  options.drop_constant_columns = false;
  auto dataset = Preprocess(raw, options);
  ASSERT_TRUE(dataset.ok());
  const auto& names = dataset->feature_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "const"), names.end());
}

TEST(PreprocessTest, RareCategoriesMergeIntoOther) {
  RawDataset raw;
  raw.name = "rare";
  raw.target = {0, 1, 0, 1, 0, 1};
  raw.sensitive = {0, 0, 0, 1, 1, 1};
  RawColumn categorical;
  categorical.name = "c";
  categorical.type = ColumnType::kCategorical;
  categorical.categorical_values = {"a", "a", "a", "b", "x", "y"};
  raw.columns.push_back(categorical);
  PreprocessOptions options;
  options.min_category_count = 2;
  auto dataset = Preprocess(raw, options);
  ASSERT_TRUE(dataset.ok());
  const auto& names = dataset->feature_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "c=<other>"), names.end());
  EXPECT_EQ(std::find(names.begin(), names.end(), "c=x"), names.end());
}

TEST(PreprocessTest, AllValuesInUnitInterval) {
  auto dataset = Preprocess(MakeRaw());
  ASSERT_TRUE(dataset.ok());
  for (int f = 0; f < dataset->num_features(); ++f) {
    for (double v : dataset->Column(f)) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(PreprocessTest, RejectsEmptyDataset) {
  RawDataset raw;
  EXPECT_FALSE(Preprocess(raw).ok());
}

TEST(PreprocessTest, RejectsLengthMismatch) {
  RawDataset raw = MakeRaw();
  raw.columns[0].numeric_values.pop_back();
  EXPECT_FALSE(Preprocess(raw).ok());
}

}  // namespace
}  // namespace dfs::data
