#include "data/dataset.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace dfs::data {
namespace {

TEST(DatasetTest, CreateValidatesShapes) {
  EXPECT_TRUE(Dataset::Create("d", {"a"}, {{0.1, 0.2}}, {0, 1}, {0, 1}).ok());
  // name/column mismatch
  EXPECT_FALSE(Dataset::Create("d", {"a", "b"}, {{0.1}}, {0}, {0}).ok());
  // column length mismatch
  EXPECT_FALSE(Dataset::Create("d", {"a"}, {{0.1}}, {0, 1}, {0, 1}).ok());
  // non-binary label
  EXPECT_FALSE(Dataset::Create("d", {"a"}, {{0.1, 0.2}}, {0, 2}, {0, 0}).ok());
  // non-binary group
  EXPECT_FALSE(Dataset::Create("d", {"a"}, {{0.1, 0.2}}, {0, 1}, {0, 3}).ok());
  // labels/groups mismatch
  EXPECT_FALSE(Dataset::Create("d", {"a"}, {{0.1, 0.2}}, {0, 1}, {0}).ok());
}

TEST(DatasetTest, Accessors) {
  const Dataset dataset = testing::MakeTinyDataset();
  EXPECT_EQ(dataset.name(), "tiny");
  EXPECT_EQ(dataset.num_rows(), 8);
  EXPECT_EQ(dataset.num_features(), 3);
  EXPECT_DOUBLE_EQ(dataset.Value(1, 0), 0.1);
  EXPECT_EQ(dataset.feature_names()[2], "f2");
  EXPECT_EQ(dataset.AllFeatures(), (std::vector<int>{0, 1, 2}));
}

TEST(DatasetTest, ToMatrixSelectsColumns) {
  const Dataset dataset = testing::MakeTinyDataset();
  const linalg::Matrix m = dataset.ToMatrix({2, 0});
  EXPECT_EQ(m.rows(), 8);
  EXPECT_EQ(m.cols(), 2);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.5);   // f2
  EXPECT_DOUBLE_EQ(m(3, 1), 0.8);   // f0
}

TEST(DatasetTest, SelectRowsKeepsAlignment) {
  const Dataset dataset = testing::MakeTinyDataset();
  const Dataset subset = dataset.SelectRows({0, 3, 5});
  EXPECT_EQ(subset.num_rows(), 3);
  EXPECT_EQ(subset.num_features(), 3);
  EXPECT_EQ(subset.labels(), (std::vector<int>{0, 1, 1}));
  EXPECT_EQ(subset.groups(), (std::vector<int>{0, 1, 1}));
  EXPECT_DOUBLE_EQ(subset.Value(1, 0), 0.8);
}

TEST(DatasetTest, PositiveRate) {
  const Dataset dataset = testing::MakeTinyDataset();
  EXPECT_DOUBLE_EQ(dataset.PositiveRate(), 0.5);
}

}  // namespace
}  // namespace dfs::data
