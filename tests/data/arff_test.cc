#include "data/arff.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/preprocess.h"

namespace dfs::data {
namespace {

constexpr const char* kArff = R"(% A tiny OpenML-style document
@RELATION credit

@ATTRIBUTE age NUMERIC
@ATTRIBUTE income REAL
@ATTRIBUTE 'home city' {berlin, 'new york', hamburg}
@ATTRIBUTE sex {male, female}
@ATTRIBUTE class {good, bad}

@DATA
25, 48000.5, berlin, male, good
?, 12000, 'new york', female, bad
51, ?, hamburg, female, good
% trailing comment
33, 23000, berlin, male, bad
)";

TEST(ArffTest, ParsesHeaderAndData) {
  auto dataset = ParseArff(kArff, "class", "sex");
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  EXPECT_EQ(dataset->name, "credit");
  EXPECT_EQ(dataset->num_rows(), 4);
  EXPECT_EQ(dataset->num_attributes(), 3);  // class/sex extracted
  EXPECT_EQ(dataset->sensitive_attribute_name, "sex");
}

TEST(ArffTest, BinaryEncodingFollowsDeclarationOrder) {
  auto dataset = ParseArff(kArff, "class", "sex");
  ASSERT_TRUE(dataset.ok());
  // class: good=0, bad=1; sex: male=0, female=1.
  EXPECT_EQ(dataset->target, (std::vector<int>{0, 1, 0, 1}));
  EXPECT_EQ(dataset->sensitive, (std::vector<int>{0, 1, 1, 0}));
}

TEST(ArffTest, NumericMissingBecomesNan) {
  auto dataset = ParseArff(kArff, "class", "sex");
  ASSERT_TRUE(dataset.ok());
  const RawColumn& age = dataset->columns[0];
  ASSERT_EQ(age.type, ColumnType::kNumeric);
  EXPECT_DOUBLE_EQ(age.numeric_values[0], 25.0);
  EXPECT_TRUE(std::isnan(age.numeric_values[1]));
}

TEST(ArffTest, QuotedNominalValuesSupported) {
  auto dataset = ParseArff(kArff, "class", "sex");
  ASSERT_TRUE(dataset.ok());
  const RawColumn& city = dataset->columns[2];
  ASSERT_EQ(city.type, ColumnType::kCategorical);
  EXPECT_EQ(city.name, "home city");
  EXPECT_EQ(city.categorical_values[1], "new york");
}

TEST(ArffTest, FeedsDirectlyIntoPreprocess) {
  auto raw = ParseArff(kArff, "class", "sex");
  ASSERT_TRUE(raw.ok());
  auto dataset = Preprocess(*raw);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->num_rows(), 4);
  EXPECT_GT(dataset->num_features(), 3);  // one-hot expansion of city
}

TEST(ArffTest, RejectsMissingSections) {
  EXPECT_FALSE(ParseArff("@relation x\n@attribute a numeric\n", "c", "s")
                   .ok());  // no @data
  EXPECT_FALSE(ParseArff("@relation x\n@data\n1\n", "c", "s").ok());
}

TEST(ArffTest, RejectsUnknownTargetOrWrongArity) {
  EXPECT_FALSE(ParseArff(kArff, "nonexistent", "sex").ok());
  // 'home city' has three values: not a valid binary target.
  EXPECT_FALSE(ParseArff(kArff, "home city", "sex").ok());
}

TEST(ArffTest, RejectsRaggedRow) {
  std::string bad = kArff;
  bad += "1, 2, berlin, male\n";  // one field short
  EXPECT_FALSE(ParseArff(bad, "class", "sex").ok());
}

TEST(ArffTest, RejectsSparseData) {
  const char* sparse =
      "@relation r\n@attribute a numeric\n@attribute class {x,y}\n"
      "@data\n{0 1, 1 x}\n";
  auto result = ParseArff(sparse, "class", "class");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
}

TEST(ArffTest, RejectsValueOutsideNominalDomain) {
  const char* bad =
      "@relation r\n@attribute a numeric\n@attribute class {x,y}\n"
      "@data\n1, z\n";
  EXPECT_FALSE(ParseArff(bad, "class", "class").ok());
}

TEST(ArffTest, KeywordsAreCaseInsensitive) {
  const char* mixed =
      "@Relation r\n@attribute a NuMeRiC\n@ATTRIBUTE class {x,y}\n"
      "@Data\n1, x\n2, y\n";
  auto dataset = ParseArff(mixed, "class", "class");
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  EXPECT_EQ(dataset->num_rows(), 2);
}

TEST(ArffTest, ReadMissingFileFails) {
  EXPECT_FALSE(ReadArffFile("/nonexistent/x.arff", "c", "s").ok());
}

}  // namespace
}  // namespace dfs::data
