// Property sweep over all 19 benchmark datasets: every generated dataset
// must be structurally sound and learnable, and its preprocessing
// invariants must hold — the benchmark suite is the foundation every
// experiment harness stands on.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/benchmark_suite.h"
#include "data/split.h"
#include "metrics/classification.h"
#include "ml/classifier.h"

namespace dfs::data {
namespace {

class BenchmarkDatasetTest : public ::testing::TestWithParam<int> {
 protected:
  static Dataset Generate() {
    auto dataset = GenerateBenchmarkDataset(GetParam(), /*seed=*/5,
                                            /*row_scale=*/0.5);
    DFS_CHECK(dataset.ok());
    return std::move(dataset).value();
  }
};

TEST_P(BenchmarkDatasetTest, ValuesAreUnitScaledAndFinite) {
  const Dataset dataset = Generate();
  for (int f = 0; f < dataset.num_features(); ++f) {
    for (double v : dataset.Column(f)) {
      ASSERT_TRUE(std::isfinite(v));
      ASSERT_GE(v, 0.0);
      ASSERT_LE(v, 1.0);
    }
  }
}

TEST_P(BenchmarkDatasetTest, BothClassesAndGroupsPresent) {
  const Dataset dataset = Generate();
  std::set<int> labels(dataset.labels().begin(), dataset.labels().end());
  std::set<int> groups(dataset.groups().begin(), dataset.groups().end());
  EXPECT_EQ(labels.size(), 2u);
  EXPECT_EQ(groups.size(), 2u);
}

TEST_P(BenchmarkDatasetTest, NoConstantColumnsSurvivePreprocessing) {
  const Dataset dataset = Generate();
  for (int f = 0; f < dataset.num_features(); ++f) {
    const auto& column = dataset.Column(f);
    const bool constant =
        std::all_of(column.begin(), column.end(),
                    [&](double v) { return v == column.front(); });
    EXPECT_FALSE(constant) << dataset.feature_names()[f];
  }
}

TEST_P(BenchmarkDatasetTest, InformativeSubsetIsLearnable) {
  // On the wide datasets the *full* feature set is deliberately hard (the
  // paper's motivation for FS); but the informative block — the subset a
  // good FS strategy should find — must be clearly learnable.
  const Dataset dataset = Generate();
  Rng rng(9);
  auto split = StratifiedSplit(dataset, 3, 1, 1, rng);
  ASSERT_TRUE(split.ok());
  const auto& spec = BenchmarkSpecs()[GetParam()];
  // Columns: [sensitive, informative..., redundant, proxies, noise, cats].
  std::vector<int> informative;
  for (int f = 1; f <= spec.informative_numeric; ++f) informative.push_back(f);
  auto model = ml::CreateClassifier(ml::ModelKind::kLogisticRegression,
                                    ml::Hyperparameters());
  ASSERT_TRUE(model
                  ->Fit(split->train.ToMatrix(informative),
                        split->train.labels())
                  .ok());
  const double f1 =
      metrics::F1Score(split->test.labels(),
                       model->PredictBatch(split->test.ToMatrix(informative)));
  EXPECT_GT(f1, 0.55) << dataset.name();
}

TEST_P(BenchmarkDatasetTest, SensitiveAttributeIsFirstFeature) {
  const Dataset dataset = Generate();
  const auto& spec = BenchmarkSpecs()[GetParam()];
  EXPECT_EQ(dataset.feature_names().front(), spec.sensitive_attribute);
  // The sensitive column mirrors the group labels exactly.
  for (int r = 0; r < dataset.num_rows(); ++r) {
    EXPECT_DOUBLE_EQ(dataset.Value(r, 0),
                     static_cast<double>(dataset.groups()[r]));
  }
}

// --- XL tier (DESIGN.md §2i) ------------------------------------------
//
// The XL registry is validated structurally at full width but generated at
// a tiny row_scale: spec width (encoded feature count) is row-count
// independent, so these tests prove the paper-scale shapes without paying
// paper-scale generation time.

TEST(XlBenchmarkSuiteTest, SpecsReachPaperScaleShapes) {
  ASSERT_EQ(XlBenchmarkSize(), 3);
  const auto& specs = XlBenchmarkSpecs();
  // Full post-encoding width: EncodedFeatureCount() plus one <missing>
  // one-hot bucket per categorical attribute (missing_fraction > 0).
  auto full_width = [](const SyntheticSpec& spec) {
    return spec.EncodedFeatureCount() + spec.categorical_attributes;
  };
  EXPECT_EQ(full_width(specs[0]), 1261);
  EXPECT_EQ(full_width(specs[1]), 1013);
  EXPECT_EQ(full_width(specs[2]), 525);
  for (const auto& spec : specs) {
    EXPECT_GE(spec.rows, 100000) << spec.name;
    EXPECT_GE(full_width(spec), 500) << spec.name;
  }
}

TEST(XlBenchmarkSuiteTest, NamesAreDistinctFromBaseSuite) {
  for (const auto& spec : XlBenchmarkSpecs()) {
    EXPECT_FALSE(BenchmarkSpecByName(spec.name).ok()) << spec.name;
  }
}

TEST(XlBenchmarkSuiteTest, GeneratesSoundDataAtSmallRowScale) {
  // ~300 rows of the 150k-row spec: full encoded width, test-sized height.
  auto generated = GenerateXlBenchmarkDataset(0, /*seed=*/5,
                                              /*row_scale=*/0.002);
  ASSERT_TRUE(generated.ok());
  const Dataset dataset = std::move(generated).value();
  const auto& spec = XlBenchmarkSpecs()[0];
  // Width cap: encoded columns + one <missing> bucket per categorical.
  // Preprocessing may drop constant columns below that, never add more.
  const int full_width =
      spec.EncodedFeatureCount() + spec.categorical_attributes;
  EXPECT_LE(dataset.num_features(), full_width);
  EXPECT_GT(dataset.num_features(), full_width / 2);
  EXPECT_GE(dataset.num_rows(), 60);
  std::set<int> labels(dataset.labels().begin(), dataset.labels().end());
  std::set<int> groups(dataset.groups().begin(), dataset.groups().end());
  EXPECT_EQ(labels.size(), 2u);
  EXPECT_EQ(groups.size(), 2u);
  for (int f = 0; f < dataset.num_features(); ++f) {
    for (double v : dataset.Column(f)) {
      ASSERT_TRUE(std::isfinite(v));
      ASSERT_GE(v, 0.0);
      ASSERT_LE(v, 1.0);
    }
  }
}

TEST(XlBenchmarkSuiteTest, IndexOutOfRangeIsError) {
  EXPECT_FALSE(GenerateXlBenchmarkDataset(-1).ok());
  EXPECT_FALSE(GenerateXlBenchmarkDataset(XlBenchmarkSize()).ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllNineteen, BenchmarkDatasetTest, ::testing::Range(0, 19),
    [](const auto& info) {
      std::string name = BenchmarkSpecs()[info.param].name;
      std::string clean;
      for (char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c))) clean += c;
      }
      return clean;
    });

}  // namespace
}  // namespace dfs::data
