#include "constraints/constraint.h"

#include <gtest/gtest.h>

namespace dfs::constraints {
namespace {

// The taxonomy tests pin Table 1 of the paper row by row.

TEST(TaxonomyTest, MaxSearchTimeRow) {
  const ConstraintTaxonomy t = TaxonomyOf(ConstraintKind::kMaxSearchTime);
  EXPECT_FALSE(t.evaluation_dependent);
  EXPECT_EQ(t.feature_dependence, FeatureSizeCorrelation::kNone);
  EXPECT_FALSE(t.needs_features);
  EXPECT_FALSE(t.needs_target);
  EXPECT_FALSE(t.needs_model);
  EXPECT_FALSE(t.needs_predictions);
}

TEST(TaxonomyTest, MaxFeatureSetSizeRow) {
  const ConstraintTaxonomy t = TaxonomyOf(ConstraintKind::kMaxFeatureSetSize);
  EXPECT_FALSE(t.evaluation_dependent);
  EXPECT_EQ(t.feature_dependence, FeatureSizeCorrelation::kNegative);
  EXPECT_TRUE(t.needs_features);
  EXPECT_FALSE(t.needs_model);
}

TEST(TaxonomyTest, TrainingAndInferenceTimeRows) {
  for (ConstraintKind kind : {ConstraintKind::kMaxTrainingTime,
                              ConstraintKind::kMaxInferenceTime}) {
    const ConstraintTaxonomy t = TaxonomyOf(kind);
    EXPECT_TRUE(t.evaluation_dependent);
    EXPECT_EQ(t.feature_dependence, FeatureSizeCorrelation::kNegative);
  }
}

TEST(TaxonomyTest, MinAccuracyRow) {
  const ConstraintTaxonomy t = TaxonomyOf(ConstraintKind::kMinAccuracy);
  EXPECT_TRUE(t.evaluation_dependent);
  EXPECT_EQ(t.feature_dependence, FeatureSizeCorrelation::kPositive);
  EXPECT_FALSE(t.needs_features);
  EXPECT_TRUE(t.needs_target);
  EXPECT_FALSE(t.needs_model);
  EXPECT_TRUE(t.needs_predictions);
}

TEST(TaxonomyTest, MinEqualOpportunityRow) {
  const ConstraintTaxonomy t =
      TaxonomyOf(ConstraintKind::kMinEqualOpportunity);
  EXPECT_TRUE(t.evaluation_dependent);
  EXPECT_EQ(t.feature_dependence, FeatureSizeCorrelation::kNegative);
  // Needs the features (group membership) on top of accuracy's inputs.
  EXPECT_TRUE(t.needs_features);
  EXPECT_TRUE(t.needs_target);
  EXPECT_FALSE(t.needs_model);
  EXPECT_TRUE(t.needs_predictions);
}

TEST(TaxonomyTest, MinPrivacyRow) {
  const ConstraintTaxonomy t = TaxonomyOf(ConstraintKind::kMinPrivacy);
  EXPECT_FALSE(t.evaluation_dependent);
  EXPECT_EQ(t.feature_dependence, FeatureSizeCorrelation::kNegative);
}

TEST(TaxonomyTest, MinSafetyNeedsEverything) {
  const ConstraintTaxonomy t = TaxonomyOf(ConstraintKind::kMinSafety);
  EXPECT_TRUE(t.evaluation_dependent);
  EXPECT_TRUE(t.needs_features);
  EXPECT_TRUE(t.needs_target);
  EXPECT_TRUE(t.needs_model);  // the attack queries the trained model
  EXPECT_TRUE(t.needs_predictions);
}

TEST(TaxonomyTest, Names) {
  EXPECT_STREQ(ConstraintKindToString(ConstraintKind::kMinEqualOpportunity),
               "Min Equal Opportunity");
  EXPECT_STREQ(ConstraintKindToString(ConstraintKind::kMaxSearchTime),
               "Max Search Time");
}

}  // namespace
}  // namespace dfs::constraints
