#include "constraints/constraint_set.h"

#include <gtest/gtest.h>

namespace dfs::constraints {
namespace {

ConstraintSet FullSet() {
  return ConstraintSetBuilder()
      .MinF1(0.7)
      .MaxSearchSeconds(10.0)
      .MaxFeatureFraction(0.5)
      .MinEqualOpportunity(0.9)
      .MinSafety(0.85)
      .PrivacyEpsilon(1.0)
      .Build()
      .value();
}

MetricValues GoodValues() {
  MetricValues values;
  values.f1 = 0.8;
  values.equal_opportunity = 0.95;
  values.safety = 0.9;
  values.feature_fraction = 0.3;
  values.selected_features = 3;
  values.total_features = 10;
  return values;
}

TEST(BuilderTest, ValidSetBuilds) {
  const ConstraintSet set = FullSet();
  EXPECT_DOUBLE_EQ(set.min_f1, 0.7);
  EXPECT_DOUBLE_EQ(set.max_search_seconds, 10.0);
  EXPECT_DOUBLE_EQ(*set.max_feature_fraction, 0.5);
  EXPECT_DOUBLE_EQ(*set.min_equal_opportunity, 0.9);
  EXPECT_DOUBLE_EQ(*set.min_safety, 0.85);
  EXPECT_DOUBLE_EQ(*set.privacy_epsilon, 1.0);
}

TEST(BuilderTest, RejectsOutOfRangeValues) {
  EXPECT_FALSE(ConstraintSetBuilder().MinF1(1.5).Build().ok());
  EXPECT_FALSE(ConstraintSetBuilder().MinF1(-0.1).Build().ok());
  EXPECT_FALSE(ConstraintSetBuilder().MaxSearchSeconds(0).Build().ok());
  EXPECT_FALSE(ConstraintSetBuilder().MaxFeatureFraction(0.0).Build().ok());
  EXPECT_FALSE(ConstraintSetBuilder().MaxFeatureFraction(1.5).Build().ok());
  EXPECT_FALSE(ConstraintSetBuilder().MinEqualOpportunity(2.0).Build().ok());
  EXPECT_FALSE(ConstraintSetBuilder().MinSafety(-1.0).Build().ok());
  EXPECT_FALSE(ConstraintSetBuilder().PrivacyEpsilon(0.0).Build().ok());
}

TEST(ConstraintSetTest, ActiveKindsListsMandatoryPlusPresent) {
  ConstraintSet minimal;
  EXPECT_EQ(minimal.ActiveKinds().size(), 2u);  // accuracy + search time
  EXPECT_EQ(FullSet().ActiveKinds().size(), 6u);
}

TEST(ConstraintSetTest, NumEvaluationDependent) {
  ConstraintSet minimal;
  EXPECT_EQ(minimal.NumEvaluationDependent(), 1);  // accuracy only
  EXPECT_EQ(FullSet().NumEvaluationDependent(), 3);  // accuracy, EO, safety
}

TEST(ConstraintSetTest, MaxFeatureCountFloorsWithMinimumOne) {
  const ConstraintSet set = FullSet();  // fraction 0.5
  EXPECT_EQ(set.MaxFeatureCount(10), 5);
  EXPECT_EQ(set.MaxFeatureCount(3), 1);  // floor(1.5) = 1
  ConstraintSet tiny;
  tiny.max_feature_fraction = 0.01;
  EXPECT_EQ(tiny.MaxFeatureCount(10), 1);  // clamped up to 1
  ConstraintSet unconstrained;
  EXPECT_EQ(unconstrained.MaxFeatureCount(10), 10);
}

TEST(ConstraintSetTest, SatisfiedAllGood) {
  EXPECT_TRUE(FullSet().Satisfied(GoodValues()));
}

TEST(ConstraintSetTest, EachViolationDetected) {
  const ConstraintSet set = FullSet();
  MetricValues values = GoodValues();
  values.f1 = 0.6;
  EXPECT_FALSE(set.Satisfied(values));
  values = GoodValues();
  values.equal_opportunity = 0.85;
  EXPECT_FALSE(set.Satisfied(values));
  values = GoodValues();
  values.safety = 0.5;
  EXPECT_FALSE(set.Satisfied(values));
  values = GoodValues();
  values.selected_features = 8;  // > MaxFeatureCount(10) = 5
  values.feature_fraction = 0.8;
  EXPECT_FALSE(set.Satisfied(values));
}

TEST(ConstraintSetTest, SizeCheckUsesCountsWhenAvailable) {
  ConstraintSet set;
  set.max_feature_fraction = 0.1;  // 1.9 features of 19 -> count bound 1
  MetricValues values = GoodValues();
  set.min_f1 = 0.0;
  values.selected_features = 1;
  values.total_features = 19;
  values.feature_fraction = 1.0 / 19.0;  // 0.0526 < 0.1 anyway
  EXPECT_TRUE(set.Satisfied(values));
  // A single feature must be admissible even for a tiny fraction.
  set.max_feature_fraction = 0.001;
  EXPECT_TRUE(set.Satisfied(values));
  values.selected_features = 2;
  EXPECT_FALSE(set.Satisfied(values));
}

TEST(DistanceTest, ZeroWhenSatisfied) {
  EXPECT_DOUBLE_EQ(FullSet().Distance(GoodValues()), 0.0);
}

TEST(DistanceTest, SquaredShortfallsSum) {
  const ConstraintSet set = FullSet();
  MetricValues values = GoodValues();
  values.f1 = 0.5;                  // gap 0.2 -> 0.04
  values.equal_opportunity = 0.8;   // gap 0.1 -> 0.01
  EXPECT_NEAR(set.Distance(values), 0.05, 1e-12);
}

TEST(DistanceTest, SizeViolationUsesFractionGap) {
  ConstraintSet set;
  set.min_f1 = 0.0;
  set.max_feature_fraction = 0.5;
  MetricValues values;
  values.f1 = 1.0;
  values.selected_features = 8;
  values.total_features = 10;
  values.feature_fraction = 0.8;
  EXPECT_NEAR(set.Distance(values), 0.09, 1e-12);  // (0.8-0.5)^2
}

TEST(ObjectiveTest, EqualsDistanceOutsideUtilityMode) {
  const ConstraintSet set = FullSet();
  MetricValues values = GoodValues();
  values.f1 = 0.5;
  EXPECT_DOUBLE_EQ(set.Objective(values, false), set.Distance(values));
  EXPECT_DOUBLE_EQ(set.Objective(GoodValues(), false), 0.0);
}

TEST(ObjectiveTest, UtilityModeSwitchesToNegativeF1) {
  const ConstraintSet set = FullSet();
  // Unsatisfied: still the distance.
  MetricValues bad = GoodValues();
  bad.f1 = 0.5;
  EXPECT_GT(set.Objective(bad, true), 0.0);
  // Satisfied: -F1, so higher F1 is better (Eq. 2).
  MetricValues good = GoodValues();
  EXPECT_DOUBLE_EQ(set.Objective(good, true), -0.8);
  MetricValues better = GoodValues();
  better.f1 = 0.9;
  EXPECT_LT(set.Objective(better, true), set.Objective(good, true));
}

TEST(PerConstraintShortfallsTest, VectorShapeFollowsActiveConstraints) {
  ConstraintSet minimal;
  MetricValues values;
  values.f1 = 0.9;
  EXPECT_EQ(minimal.PerConstraintShortfalls(values).size(), 1u);
  EXPECT_EQ(FullSet().PerConstraintShortfalls(values).size(), 4u);
}

TEST(PerConstraintShortfallsTest, SquaresSumToDistance) {
  const ConstraintSet set = FullSet();
  MetricValues values = GoodValues();
  values.f1 = 0.55;
  values.safety = 0.7;
  const auto shortfalls = set.PerConstraintShortfalls(values);
  double sum_squares = 0.0;
  for (double s : shortfalls) sum_squares += s * s;
  EXPECT_NEAR(sum_squares, set.Distance(values), 1e-12);
}

TEST(ToStringTest, MentionsActiveConstraints) {
  const std::string text = FullSet().ToString();
  EXPECT_NE(text.find("F1>=0.70"), std::string::npos);
  EXPECT_NE(text.find("EO>=0.90"), std::string::npos);
  EXPECT_NE(text.find("eps=1.00"), std::string::npos);
  ConstraintSet minimal;
  EXPECT_EQ(minimal.ToString().find("EO"), std::string::npos);
}

}  // namespace
}  // namespace dfs::constraints
