#include "obs/trace.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "serve/line_protocol.h"

namespace dfs::obs {
namespace {

std::string TracePath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

TEST(TraceWriterTest, DisabledByDefaultAndSpansAreFree) {
  ASSERT_FALSE(TraceWriter::enabled());
  TraceSpan span("noop");  // must not crash or write anywhere
}

TEST(TraceWriterTest, SecondOpenWithoutCloseFails) {
  const std::string path = TracePath("dfs_trace_reopen.jsonl");
  ASSERT_TRUE(TraceWriter::Open(path).ok());
  EXPECT_FALSE(TraceWriter::Open(path).ok());
  TraceWriter::Close();
  EXPECT_FALSE(TraceWriter::enabled());
}

TEST(TraceSpanTest, NestingProducesWellFormedFlatJsonl) {
  const std::string path = TracePath("dfs_trace_nesting.jsonl");
  ASSERT_TRUE(TraceWriter::Open(path).ok());
  {
    TraceSpan outer("engine.run", "SFS(NR)");
    {
      TraceSpan inner("fs.ranking", "detail with \"quotes\" and \\slash");
    }
    TraceSpan sibling("fs.portfolio_slice");
  }
  TraceWriter::Close();

  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 3u);  // spans close inner-first
  // Every line is a flat JSON object the serve wire parser accepts.
  std::vector<serve::JsonObject> spans;
  for (const std::string& line : lines) {
    auto object = serve::ParseJsonLine(line);
    ASSERT_TRUE(object.ok()) << line;
    EXPECT_TRUE(serve::GetString(*object, "span").ok()) << line;
    EXPECT_TRUE(serve::GetNumber(*object, "start_us").ok()) << line;
    EXPECT_TRUE(serve::GetNumber(*object, "dur_us").ok()) << line;
    EXPECT_TRUE(serve::GetNumber(*object, "thread").ok()) << line;
    EXPECT_TRUE(serve::GetNumber(*object, "depth").ok()) << line;
    spans.push_back(*object);
  }

  // Lines appear in destruction order: inner, sibling, outer.
  EXPECT_EQ(serve::GetString(spans[0], "span").value_or(""), "fs.ranking");
  EXPECT_EQ(serve::GetString(spans[0], "detail").value_or(""),
            "detail with \"quotes\" and \\slash");
  EXPECT_EQ(serve::GetNumber(spans[0], "depth").value_or(-1), 1.0);
  EXPECT_EQ(serve::GetString(spans[1], "span").value_or(""),
            "fs.portfolio_slice");
  EXPECT_EQ(serve::GetNumber(spans[1], "depth").value_or(-1), 1.0);
  EXPECT_EQ(serve::GetString(spans[2], "span").value_or(""), "engine.run");
  EXPECT_EQ(serve::GetString(spans[2], "detail").value_or(""), "SFS(NR)");
  EXPECT_EQ(serve::GetNumber(spans[2], "depth").value_or(-1), 0.0);

  // The outer span encloses the inner one on the shared timeline.
  const double outer_start =
      serve::GetNumber(spans[2], "start_us").value_or(-1);
  const double outer_end =
      outer_start + serve::GetNumber(spans[2], "dur_us").value_or(-1);
  const double inner_start =
      serve::GetNumber(spans[0], "start_us").value_or(-1);
  const double inner_end =
      inner_start + serve::GetNumber(spans[0], "dur_us").value_or(-1);
  EXPECT_LE(outer_start, inner_start);
  EXPECT_LE(inner_end, outer_end + 1.0);  // µs rounding slack
}

TEST(TraceSpanTest, ThreadsGetDistinctOrdinalsAndIndependentDepth) {
  const std::string path = TracePath("dfs_trace_threads.jsonl");
  ASSERT_TRUE(TraceWriter::Open(path).ok());
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      TraceSpan outer("outer");
      TraceSpan inner("inner");
    });
  }
  for (auto& thread : threads) thread.join();
  TraceWriter::Close();

  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 2u * kThreads);
  std::map<int, std::vector<double>> depths_by_thread;
  for (const std::string& line : lines) {
    auto object = serve::ParseJsonLine(line);
    ASSERT_TRUE(object.ok()) << line;
    const int thread =
        static_cast<int>(serve::GetNumber(*object, "thread").value_or(-1));
    depths_by_thread[thread].push_back(
        serve::GetNumber(*object, "depth").value_or(-1));
  }
  ASSERT_EQ(depths_by_thread.size(), static_cast<size_t>(kThreads));
  for (const auto& [thread, depths] : depths_by_thread) {
    // Each thread wrote exactly its inner (depth 1) then outer (depth 0).
    ASSERT_EQ(depths.size(), 2u);
    EXPECT_EQ(depths[0], 1.0);
    EXPECT_EQ(depths[1], 0.0);
  }
}

TEST(ScopedTimerTest, RecordsStopsAndCancels) {
  MetricsRegistry registry;
  Histogram& histogram = registry.histogram("t.seconds");
  Counter& counter = registry.counter("t.count");
  {
    ScopedTimer timer(histogram, &counter);
  }
  EXPECT_EQ(histogram.Snapshot().count, 1u);
  EXPECT_EQ(counter.value(), 1u);
  {
    ScopedTimer timer(histogram, &counter);
    timer.Stop();
    timer.Stop();  // idempotent
  }
  EXPECT_EQ(histogram.Snapshot().count, 2u);
  EXPECT_EQ(counter.value(), 2u);
  {
    ScopedTimer timer(histogram, &counter);
    timer.Cancel();  // cache-hit path: nothing recorded
  }
  EXPECT_EQ(histogram.Snapshot().count, 2u);
  EXPECT_EQ(counter.value(), 2u);
}

}  // namespace
}  // namespace dfs::obs
