#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

namespace dfs::obs {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(GaugeTest, SetAddAndNegative) {
  Gauge gauge;
  gauge.Set(7);
  EXPECT_EQ(gauge.value(), 7);
  gauge.Add(-10);
  EXPECT_EQ(gauge.value(), -3);
  gauge.Reset();
  EXPECT_EQ(gauge.value(), 0);
}

TEST(HistogramTest, DefaultBoundsCoverMicrosecondsToSeconds) {
  const auto bounds = Histogram::DefaultBounds();
  ASSERT_EQ(bounds.size(), 24u);
  EXPECT_DOUBLE_EQ(bounds.front(), 1e-6);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(bounds[i], bounds[i - 1] * 2.0);
  }
  EXPECT_GT(bounds.back(), 8.0);  // ~8.4 s
}

TEST(HistogramTest, RecordPlacesSamplesInCorrectBuckets) {
  Histogram histogram({1.0, 2.0, 4.0});
  histogram.Record(0.5);   // bucket 0 (<= 1)
  histogram.Record(1.0);   // bucket 0 (inclusive upper bound)
  histogram.Record(3.0);   // bucket 2
  histogram.Record(100.0);  // overflow
  const HistogramSnapshot snapshot = histogram.Snapshot();
  ASSERT_EQ(snapshot.counts.size(), 4u);  // 3 finite + overflow
  EXPECT_EQ(snapshot.counts[0], 2u);
  EXPECT_EQ(snapshot.counts[1], 0u);
  EXPECT_EQ(snapshot.counts[2], 1u);
  EXPECT_EQ(snapshot.counts[3], 1u);
  EXPECT_EQ(snapshot.count, 4u);
  EXPECT_DOUBLE_EQ(snapshot.sum, 104.5);
  EXPECT_DOUBLE_EQ(snapshot.max, 100.0);
  EXPECT_DOUBLE_EQ(snapshot.mean(), 104.5 / 4.0);
}

TEST(HistogramTest, QuantileReturnsBucketUpperBound) {
  Histogram histogram({1.0, 2.0, 4.0});
  for (int i = 0; i < 90; ++i) histogram.Record(0.5);  // bucket 0
  for (int i = 0; i < 9; ++i) histogram.Record(1.5);   // bucket 1
  histogram.Record(8.0);                               // overflow
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_DOUBLE_EQ(snapshot.Quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(snapshot.Quantile(0.9), 1.0);
  EXPECT_DOUBLE_EQ(snapshot.Quantile(0.95), 2.0);
  // The last sample lives in the overflow bucket, whose "bound" is max.
  EXPECT_DOUBLE_EQ(snapshot.Quantile(1.0), 8.0);
  // Empty histogram quantiles are zero.
  EXPECT_DOUBLE_EQ(Histogram().Snapshot().Quantile(0.5), 0.0);
}

TEST(MetricsRegistryTest, SameNameReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x.count");
  Counter& b = registry.counter("x.count");
  EXPECT_EQ(&a, &b);
  a.Increment();
  EXPECT_EQ(b.value(), 1u);
}

TEST(MetricsRegistryTest, ResetZeroesInPlaceWithoutInvalidatingHandles) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("c");
  Gauge& gauge = registry.gauge("g");
  Histogram& histogram = registry.histogram("h");
  counter.Increment(5);
  gauge.Set(3);
  histogram.Record(0.25);
  registry.Reset();
  // The same references still work and read zero.
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_EQ(histogram.Snapshot().count, 0u);
  counter.Increment();
  EXPECT_EQ(registry.Snapshot().counters.at("c"), 1u);
}

TEST(MetricsRegistryTest, ConcurrentHammeringReconcilesExactly) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("hammer.count");
  Gauge& gauge = registry.gauge("hammer.gauge");
  Histogram& histogram = registry.histogram("hammer.seconds");

  constexpr int kThreads = 8;
  constexpr int kIterations = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        counter.Increment();
        gauge.Add(1);
        // Spread samples across several buckets; every value is exact in
        // binary floating point so the sum reconciles exactly too.
        histogram.Record((t % 4 == 0)   ? 0.5
                         : (t % 4 == 1) ? 0.03125
                         : (t % 4 == 2) ? 0.000244140625
                                        : 16.0);  // overflow bucket
      }
    });
  }
  for (auto& thread : threads) thread.join();

  constexpr uint64_t kTotal =
      static_cast<uint64_t>(kThreads) * kIterations;
  EXPECT_EQ(counter.value(), kTotal);
  EXPECT_EQ(gauge.value(), static_cast<int64_t>(kTotal));
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, kTotal);
  uint64_t bucket_total = 0;
  for (const uint64_t n : snapshot.counts) bucket_total += n;
  EXPECT_EQ(bucket_total, kTotal);
  // 2 of the 8 threads recorded each value.
  const double expected_sum =
      2.0 * kIterations * (0.5 + 0.03125 + 0.000244140625 + 16.0);
  EXPECT_DOUBLE_EQ(snapshot.sum, expected_sum);
  EXPECT_DOUBLE_EQ(snapshot.max, 16.0);
}

TEST(MetricsRegistryTest, SnapshotWhileWritersRunIsWellFormed) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("live.count");
  Histogram& histogram = registry.histogram("live.seconds");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load()) {
      counter.Increment();
      histogram.Record(0.001);
    }
  });
  for (int i = 0; i < 50; ++i) {
    const MetricsSnapshot snapshot = registry.Snapshot();
    const auto& h = snapshot.histograms.at("live.seconds");
    uint64_t bucket_total = 0;
    for (const uint64_t n : h.counts) bucket_total += n;
    // Not a consistent cut, but never torn: bucket totals may trail the
    // sample count by in-flight records, never exceed what was recorded.
    EXPECT_LE(bucket_total, counter.value() + 1);
  }
  stop.store(true);
  writer.join();
}

TEST(SanitizeLabelTest, MapsDisplayNamesOntoMetricNames) {
  EXPECT_EQ(SanitizeLabel("SFFS(NR)"), "sffs_nr");
  EXPECT_EQ(SanitizeLabel("TPE(FCBF)"), "tpe_fcbf");
  EXPECT_EQ(SanitizeLabel("Portfolio(SFS+RFE)"), "portfolio_sfs_rfe");
  EXPECT_EQ(SanitizeLabel("  weird -- name "), "weird_name");
  EXPECT_EQ(SanitizeLabel(""), "");
}

TEST(MetricsSnapshotTest, ToJsonContainsInstrumentsAndOmitsZeroBuckets) {
  MetricsRegistry registry;
  registry.counter("a.count").Increment(3);
  registry.gauge("a.gauge").Set(-2);
  Histogram& histogram = registry.histogram("a.seconds", {1.0, 2.0});
  histogram.Record(0.5);
  histogram.Record(9.0);
  const std::string json = registry.Snapshot().ToJson();
  EXPECT_NE(json.find("\"a.count\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"a.gauge\": -2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"a.seconds\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"+inf\""), std::string::npos) << json;
  // The empty (1, 2] bucket must not appear.
  EXPECT_EQ(json.find("\"2\""), std::string::npos) << json;
}

}  // namespace
}  // namespace dfs::obs
