// Known-bad fixture for tools/dfs_analyze.py (determinism pass,
// fp-accumulate rule): std::accumulate over floating-point values
// outside src/linalg/kernels*. Never compiled.
#include <numeric>
#include <vector>

namespace fixture {

double MeanOf(const std::vector<double>& values) {
  const double total =
      std::accumulate(values.begin(), values.end(), 0.0);
  return total / static_cast<double>(values.size());
}

}  // namespace fixture
