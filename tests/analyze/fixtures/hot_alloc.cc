// Known-bad fixture for tools/dfs_analyze.py (hot-alloc pass): a
// DFS_HOT root whose transitive callee grows a container, plus a naked
// DFS_ALLOC_OK marker with no justification. Never compiled.
#include <vector>

#include "util/thread_annotations.h"

namespace fixture {

class HotPath {
 public:
  DFS_HOT double Evaluate(const std::vector<double>& row);

 private:
  double Tally(const std::vector<double>& row);

  std::vector<double> scratch_;
};

double HotPath::Evaluate(const std::vector<double>& row) {
  return Tally(row);
}

double HotPath::Tally(const std::vector<double>& row) {
  // The allocating construct the walk must reach through Evaluate:
  scratch_.push_back(row.empty() ? 0.0 : row[0]);
  // DFS_ALLOC_OK:
  scratch_.clear();
  return static_cast<double>(scratch_.size());
}

}  // namespace fixture
