// Known-bad fixture for tools/dfs_analyze.py (lock-order pass): the
// Beta half of the deliberate two-mutex cycle started in
// lock_cycle_a.cc. Beta::Drain acquires Alpha::mu_ (via Alpha::Refresh)
// while holding Beta::mu_ — the reverse of Alpha::Update's order.
#include "util/mutex.h"

namespace fixture {

class Alpha;

class Beta {
 public:
  void Absorb(int v);
  void Drain(Alpha& peer);

 private:
  util::Mutex mu_;
  int total_ = 0;
};

void Beta::Absorb(int v) {
  util::MutexLock lock(mu_);
  total_ += v;
}

void Beta::Drain(Alpha& peer) {
  util::MutexLock lock(mu_);
  total_ = 0;
  peer.Refresh();  // acquires Alpha::mu_ while Beta::mu_ is held
}

}  // namespace fixture
