// Known-bad fixture for tools/dfs_analyze.py (lock-order pass): the
// Alpha half of a deliberate two-mutex cycle. Alpha::Update acquires
// Beta::mu_ (via Beta::Absorb in lock_cycle_b.cc) while holding
// Alpha::mu_; lock_cycle_b.cc closes the cycle in the other direction.
// The analyzer must report the cycle with BOTH acquisition sites named.
// Never compiled — tests/analyze/dfs_analyze_test.py points the
// analyzer at this directory and asserts the report.
#include "util/mutex.h"

namespace fixture {

class Beta;

class Alpha {
 public:
  void Update(Beta& peer);
  void Refresh();

 private:
  util::Mutex mu_;
  int value_ = 0;
};

void Alpha::Update(Beta& peer) {
  util::MutexLock lock(mu_);
  value_ += 1;
  peer.Absorb(value_);  // acquires Beta::mu_ while Alpha::mu_ is held
}

void Alpha::Refresh() {
  util::MutexLock lock(mu_);
  value_ = 0;
}

}  // namespace fixture
