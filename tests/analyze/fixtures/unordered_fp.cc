// Known-bad fixture for tools/dfs_analyze.py (determinism pass,
// unordered-fp-order rule): a floating-point fold in unordered_map
// iteration order — results depend on the hash seed. Never compiled.
#include <unordered_map>

namespace fixture {

class Tally {
 public:
  double Sum() const;

 private:
  std::unordered_map<int, double> weights_;
};

double Tally::Sum() const {
  double total = 0.0;
  for (const auto& [key, w] : weights_) {
    total += w;  // FP accumulation in hash-iteration order
  }
  return total;
}

}  // namespace fixture
