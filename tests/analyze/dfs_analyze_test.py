#!/usr/bin/env python3
"""Self-test for tools/dfs_analyze.py (wired into ctest as analyze.selftest).

Mirrors tests/lint/dfs_lint_test.py:
  1. Each analysis rule must fire on its known-bad fixture in
     tests/analyze/fixtures/ — a rule that stops firing is a rule that
     silently stopped guarding its contract. The deliberate two-mutex
     cycle (lock_cycle_a.cc / lock_cycle_b.cc) must be reported with
     BOTH acquisition sites named.
  2. The real tree (src/) must analyze clean, the committed lock-order
     DOT (docs/lock_order.dot) must match a fresh regeneration, and the
     real graph must contain the serve-layer nodes and stay acyclic.
"""

import os
import re
import subprocess
import sys
import unittest

TESTS_ANALYZE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(TESTS_ANALYZE))
DFS_ANALYZE = os.path.join(REPO, "tools", "dfs_analyze.py")
FIXTURES = os.path.join(TESTS_ANALYZE, "fixtures")
LOCK_ORDER_DOT = os.path.join(REPO, "docs", "lock_order.dot")

# rule -> fixture file it must fire on (at least once). The lock-order
# rule reports against the synthetic "(lock graph)" location, so it is
# checked separately (test_lock_cycle_names_both_sites).
EXPECTED = {
    "hot-alloc": "hot_alloc.cc",
    "unordered-fp-order": "unordered_fp.cc",
    "fp-accumulate": "fp_accumulate.cc",
}

VIOLATION_RE = re.compile(r"^dfs_analyze: (.+?):(\d+): \[([a-z-]+)\]")
DOT_EDGE_RE = re.compile(r'^\s*"([^"]+)"\s*->\s*"([^"]+)"')


def run_analyze(*args):
    return subprocess.run(
        [sys.executable, DFS_ANALYZE, *args],
        capture_output=True, text=True, check=False, cwd=REPO)


class DfsAnalyzeTest(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.fixture_run = run_analyze("--root", FIXTURES)
        cls.fired = set()  # (reported file, rule)
        for line in cls.fixture_run.stderr.splitlines():
            match = VIOLATION_RE.match(line)
            if match:
                cls.fired.add((match.group(1), match.group(3)))

    def test_fixture_run_fails(self):
        self.assertEqual(self.fixture_run.returncode, 1,
                         self.fixture_run.stderr)

    def test_each_rule_fires_on_its_fixture(self):
        for rule, fixture in EXPECTED.items():
            with self.subTest(rule=rule):
                self.assertIn(
                    (fixture, rule), self.fired,
                    f"rule [{rule}] did not fire on {fixture}; "
                    f"fired={sorted(self.fired)}")

    def test_lock_cycle_names_both_sites(self):
        # The deliberate Alpha::mu_ <-> Beta::mu_ cycle must be reported
        # as a deadlock with the acquisition site of each hop named, so
        # the report is actionable without re-running the analysis.
        cycle_lines = [line for line in self.fixture_run.stderr.splitlines()
                       if "[lock-order]" in line]
        self.assertEqual(len(cycle_lines), 1, self.fixture_run.stderr)
        report = cycle_lines[0]
        self.assertIn("Alpha::mu_", report)
        self.assertIn("Beta::mu_", report)
        self.assertRegex(report, r"lock_cycle_a\.cc:\d+")
        self.assertRegex(report, r"lock_cycle_b\.cc:\d+")

    def test_no_rule_fires_on_a_foreign_fixture(self):
        # Each fixture exercises exactly one rule; cross-fire means a
        # rule got too broad. "(lock graph)" is the cycle report's
        # synthetic location; hot_alloc.cc also carries the deliberate
        # naked DFS_ALLOC_OK marker (same rule).
        allowed = {(fixture, rule) for rule, fixture in EXPECTED.items()}
        allowed.add(("(lock graph)", "lock-order"))
        self.assertEqual(self.fired - allowed, set())

    def test_real_tree_is_clean_and_dot_in_sync(self):
        result = run_analyze("--check-dot", LOCK_ORDER_DOT)
        self.assertEqual(result.returncode, 0,
                         result.stdout + result.stderr)
        self.assertIn("dfs_analyze: OK", result.stdout)

    def test_real_lock_graph_covers_serve_and_stays_acyclic(self):
        # Regression net for the cross-component path that motivated the
        # pass: the event-loop front end and the server core both feed
        # MetricsRegistry::mu_, and the committed graph must stay acyclic.
        with open(LOCK_ORDER_DOT, encoding="utf-8") as handle:
            dot = handle.read()
        edges = [DOT_EDGE_RE.match(line).groups()
                 for line in dot.splitlines() if DOT_EDGE_RE.match(line)]
        nodes = {n for edge in edges for n in edge}
        self.assertIn("EventLoopFrontEnd::mu_", nodes)
        self.assertIn("MetricsRegistry::mu_", nodes)
        self.assertTrue(any(n.startswith("DfsServer::") for n in nodes))

        graph = {}
        for a, b in edges:
            graph.setdefault(a, set()).add(b)
        WHITE, GREY, BLACK = 0, 1, 2
        color = {}

        def has_cycle(node):
            color[node] = GREY
            for succ in graph.get(node, ()):
                state = color.get(succ, WHITE)
                if state == GREY or (state == WHITE and has_cycle(succ)):
                    return True
            color[node] = BLACK
            return False

        for node in sorted(nodes):
            if color.get(node, WHITE) == WHITE:
                self.assertFalse(has_cycle(node),
                                 f"cycle through {node} in {LOCK_ORDER_DOT}")

    def test_forced_clang_frontend_is_loud_when_missing(self):
        # --frontend clang must either really run (libclang present) or
        # fail loudly with exit 2 and a NOTICE — never silently pass.
        result = run_analyze("--frontend", "clang")
        self.assertIn(result.returncode, (0, 2), result.stderr)
        if result.returncode == 2:
            self.assertIn("NOTICE", result.stderr)
            self.assertIn("nothing was analyzed", result.stderr)


if __name__ == "__main__":
    unittest.main()
