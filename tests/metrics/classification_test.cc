#include "metrics/classification.h"

#include <gtest/gtest.h>

namespace dfs::metrics {
namespace {

TEST(ConfusionTest, CountsAllCells) {
  const ConfusionMatrix confusion =
      ComputeConfusion({1, 1, 0, 0, 1, 0}, {1, 0, 0, 1, 1, 0});
  EXPECT_EQ(confusion.true_positives, 2);
  EXPECT_EQ(confusion.false_negatives, 1);
  EXPECT_EQ(confusion.false_positives, 1);
  EXPECT_EQ(confusion.true_negatives, 2);
  EXPECT_EQ(confusion.total(), 6);
}

TEST(PrecisionRecallTest, KnownValues) {
  ConfusionMatrix confusion;
  confusion.true_positives = 3;
  confusion.false_positives = 1;
  confusion.false_negatives = 2;
  confusion.true_negatives = 4;
  EXPECT_DOUBLE_EQ(Precision(confusion), 0.75);
  EXPECT_DOUBLE_EQ(Recall(confusion), 0.6);
  // F1 = 2 * 0.75 * 0.6 / 1.35 = 2/3.
  EXPECT_NEAR(F1Score(confusion), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(Accuracy(confusion), 0.7);
}

TEST(F1Test, PerfectAndWorstCase) {
  EXPECT_DOUBLE_EQ(F1Score({1, 0, 1}, {1, 0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(F1Score({1, 1, 1}, {0, 0, 0}), 0.0);
}

TEST(F1Test, UndefinedCasesAreZero) {
  // No predicted positives and no actual positives.
  EXPECT_DOUBLE_EQ(F1Score({0, 0}, {0, 0}), 0.0);
}

TEST(F1Test, RobustToClassImbalance) {
  // Predicting all-majority on 90/10 imbalance: accuracy high, F1 zero —
  // the reason the paper uses F1 (Section 3).
  std::vector<int> y_true(100, 0), y_pred(100, 0);
  for (int i = 0; i < 10; ++i) y_true[i] = 1;
  EXPECT_DOUBLE_EQ(Accuracy(y_true, y_pred), 0.9);
  EXPECT_DOUBLE_EQ(F1Score(y_true, y_pred), 0.0);
}

TEST(TprTest, MatchesRecall) {
  std::vector<int> y_true = {1, 1, 1, 0};
  std::vector<int> y_pred = {1, 0, 1, 1};
  EXPECT_NEAR(TruePositiveRate(y_true, y_pred), 2.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace dfs::metrics
