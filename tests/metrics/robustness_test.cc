#include "metrics/robustness.h"

#include <gtest/gtest.h>

#include <cmath>
#include <span>

#include "metrics/hop_skip_jump.h"
#include "ml/logistic_regression.h"
#include "testing/test_util.h"

namespace dfs::metrics {
namespace {

linalg::Matrix ToMatrix(const data::Dataset& dataset) {
  return dataset.ToMatrix(dataset.AllFeatures());
}

// A classifier with a fixed linear boundary at x0 = threshold; lets tests
// reason about exact boundary distances without training noise.
class ThresholdModel : public ml::Classifier {
 public:
  explicit ThresholdModel(double threshold) : threshold_(threshold) {}
  Status Fit(const linalg::Matrix&, const std::vector<int>&) override {
    return OkStatus();
  }
  double PredictProba(std::span<const double> row) const override {
    return row[0] >= threshold_ ? 1.0 : 0.0;
  }
  std::unique_ptr<Classifier> Clone() const override {
    return std::make_unique<ThresholdModel>(threshold_);
  }
  std::string name() const override { return "threshold"; }

 private:
  double threshold_;
};

TEST(HopSkipJumpTest, FindsAdversarialNearBoundary) {
  ThresholdModel model(0.5);
  HopSkipJumpOptions options;
  options.max_l2_distance = 0.3;
  HopSkipJumpAttack attack(options);
  Rng rng(81);
  // Point at x0 = 0.45: boundary is 0.05 away, well within the radius.
  auto adversarial = attack.Attack(model, {0.45, 0.5}, rng);
  ASSERT_TRUE(adversarial.has_value());
  EXPECT_NE(model.Predict(*adversarial), model.Predict({0.45, 0.5}));
  const double dx = (*adversarial)[0] - 0.45;
  const double dy = (*adversarial)[1] - 0.5;
  EXPECT_LE(std::sqrt(dx * dx + dy * dy), 0.3 + 1e-9);
}

TEST(HopSkipJumpTest, RespectsDistanceBudget) {
  ThresholdModel model(0.95);
  HopSkipJumpOptions options;
  options.max_l2_distance = 0.05;  // boundary is 0.9 away from the probe
  HopSkipJumpAttack attack(options);
  Rng rng(82);
  EXPECT_FALSE(attack.Attack(model, {0.05, 0.5}, rng).has_value());
}

TEST(HopSkipJumpTest, RespectsQueryBudget) {
  ThresholdModel model(0.5);
  HopSkipJumpOptions options;
  options.max_queries = 40;
  HopSkipJumpAttack attack(options);
  Rng rng(83);
  attack.Attack(model, {0.3, 0.3}, rng);
  EXPECT_LE(attack.last_query_count(), 40 + 1);
}

TEST(HopSkipJumpTest, EmptyRowFails) {
  ThresholdModel model(0.5);
  HopSkipJumpAttack attack;
  Rng rng(84);
  EXPECT_FALSE(attack.Attack(model, std::vector<double>{}, rng).has_value());
}

TEST(HopSkipJumpTest, MovesTowardBoundary) {
  // The refined adversarial example should sit close to x0 = 0.5.
  ThresholdModel model(0.5);
  HopSkipJumpOptions options;
  options.max_queries = 400;
  options.max_l2_distance = 1.5;
  HopSkipJumpAttack attack(options);
  Rng rng(85);
  auto adversarial = attack.Attack(model, {0.2, 0.5, 0.5}, rng);
  ASSERT_TRUE(adversarial.has_value());
  EXPECT_NEAR((*adversarial)[0], 0.5, 0.15);
}

TEST(EmpiricalRobustnessTest, PerfectWhenModelConstant) {
  // A constant model cannot be evaded: no prediction ever flips.
  class ConstantModel : public ml::Classifier {
   public:
    Status Fit(const linalg::Matrix&, const std::vector<int>&) override {
      return OkStatus();
    }
    double PredictProba(std::span<const double>) const override {
      return 1.0;
    }
    std::unique_ptr<Classifier> Clone() const override {
      return std::make_unique<ConstantModel>();
    }
    std::string name() const override { return "const"; }
  };
  ConstantModel model;
  const data::Dataset dataset = testing::MakeLinearDataset(60, 0, 86);
  Rng rng(87);
  EXPECT_DOUBLE_EQ(EmpiricalRobustness(model, ToMatrix(dataset),
                                       dataset.labels(), rng),
                   1.0);
}

TEST(EmpiricalRobustnessTest, InUnitIntervalForRealModel) {
  const data::Dataset dataset = testing::MakeLinearDataset(150, 1, 88);
  ml::LogisticRegression model((ml::Hyperparameters()));
  ASSERT_TRUE(model.Fit(ToMatrix(dataset), dataset.labels()).ok());
  Rng rng(89);
  RobustnessOptions options;
  options.max_attacked_rows = 10;
  options.attack.max_queries = 80;
  const double safety = EmpiricalRobustness(model, ToMatrix(dataset),
                                            dataset.labels(), rng, options);
  EXPECT_GE(safety, 0.0);
  EXPECT_LE(safety, 1.0);
}

TEST(EmpiricalRobustnessTest, WiderAttackRadiusLowersSafety) {
  const data::Dataset dataset = testing::MakeLinearDataset(200, 2, 90);
  ml::LogisticRegression model((ml::Hyperparameters()));
  ASSERT_TRUE(model.Fit(ToMatrix(dataset), dataset.labels()).ok());
  auto safety_at = [&](double radius) {
    Rng rng(91);
    RobustnessOptions options;
    options.max_attacked_rows = 16;
    options.attack.max_l2_distance = radius;
    return EmpiricalRobustness(model, ToMatrix(dataset), dataset.labels(),
                               rng, options);
  };
  EXPECT_GE(safety_at(0.01), safety_at(2.0));
}

TEST(EmpiricalRobustnessTest, EmptyTestSetIsSafe) {
  ThresholdModel model(0.5);
  Rng rng(92);
  EXPECT_DOUBLE_EQ(
      EmpiricalRobustness(model, linalg::Matrix(0, 2), {}, rng), 1.0);
}

}  // namespace
}  // namespace dfs::metrics
