#include <gtest/gtest.h>

#include "metrics/fairness.h"

namespace dfs::metrics {
namespace {

TEST(GeneralizedEntropyIndexTest, ZeroForPerfectPredictions) {
  std::vector<int> y = {1, 0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(GeneralizedEntropyIndex(y, y), 0.0);
}

TEST(GeneralizedEntropyIndexTest, ZeroForUniformErrors) {
  // Everyone gets an undeserved positive: benefits are uniformly 2.
  std::vector<int> y_true = {0, 0, 0};
  std::vector<int> y_pred = {1, 1, 1};
  EXPECT_DOUBLE_EQ(GeneralizedEntropyIndex(y_true, y_pred), 0.0);
}

TEST(GeneralizedEntropyIndexTest, PositiveForUnevenBenefits) {
  // One undeserved positive among correct predictions: uneven benefits.
  std::vector<int> y_true = {0, 0, 0, 0};
  std::vector<int> y_pred = {1, 0, 0, 0};
  EXPECT_GT(GeneralizedEntropyIndex(y_true, y_pred), 0.0);
}

TEST(GeneralizedEntropyIndexTest, MatchesHalfSquaredCoefficientOfVariation) {
  // GE(alpha=2) equals CV^2 / 2 of the benefit distribution: a 4-of-8
  // undeserved-positive split has benefit mean 1.5 and variance 0.25, so
  // GE2 = (0.25 / 2.25) / 2 = 1/18; the 1-of-8 split gives
  // (0.109375 / 1.265625) / 2 = 7/162. The even split is *more* unequal in
  // relative terms.
  std::vector<int> y_true(8, 0);
  std::vector<int> one = {1, 0, 0, 0, 0, 0, 0, 0};
  std::vector<int> four = {1, 1, 1, 1, 0, 0, 0, 0};
  EXPECT_NEAR(GeneralizedEntropyIndex(y_true, four), 1.0 / 18.0, 1e-12);
  EXPECT_NEAR(GeneralizedEntropyIndex(y_true, one), 7.0 / 162.0, 1e-12);
  EXPECT_GT(GeneralizedEntropyIndex(y_true, four),
            GeneralizedEntropyIndex(y_true, one));
}

TEST(GeneralizedEntropyIndexTest, EmptyInputIsZero) {
  EXPECT_DOUBLE_EQ(GeneralizedEntropyIndex({}, {}), 0.0);
}

TEST(DisparateImpactTest, EqualRatesArePerfect) {
  std::vector<int> groups = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(DisparateImpact({1, 0, 1, 0}, groups), 1.0);
}

TEST(DisparateImpactTest, EightyPercentRule) {
  // Majority: 5/10 positive; minority: 4/10 positive -> ratio 0.8.
  std::vector<int> y_pred, groups;
  for (int i = 0; i < 10; ++i) {
    groups.push_back(0);
    y_pred.push_back(i < 5 ? 1 : 0);
  }
  for (int i = 0; i < 10; ++i) {
    groups.push_back(1);
    y_pred.push_back(i < 4 ? 1 : 0);
  }
  EXPECT_NEAR(DisparateImpact(y_pred, groups), 0.8, 1e-12);
}

TEST(DisparateImpactTest, SymmetricInDirection) {
  // Ratio > 1 is folded to 1/ratio so the score is direction-agnostic.
  std::vector<int> groups = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(DisparateImpact({1, 0, 1, 1}, groups),
                   DisparateImpact({1, 1, 1, 0}, groups));
}

TEST(DisparateImpactTest, DegenerateCases) {
  EXPECT_DOUBLE_EQ(DisparateImpact({0, 0, 0, 0}, {0, 0, 1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(DisparateImpact({1, 1, 0, 0}, {0, 0, 1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(DisparateImpact({1, 0}, {0, 0}), 1.0);  // one group only
}

}  // namespace
}  // namespace dfs::metrics
