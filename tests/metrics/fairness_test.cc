#include "metrics/fairness.h"

#include <gtest/gtest.h>

namespace dfs::metrics {
namespace {

TEST(EqualOpportunityTest, PerfectWhenTprEqual) {
  // Both groups: TPR = 1.
  std::vector<int> y_true = {1, 1, 0, 0};
  std::vector<int> y_pred = {1, 1, 0, 0};
  std::vector<int> groups = {0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(EqualOpportunity(y_true, y_pred, groups), 1.0);
}

TEST(EqualOpportunityTest, WorstWhenOnlyMajorityServed) {
  // Majority positives all found, minority positives all missed.
  std::vector<int> y_true = {1, 1, 1, 1};
  std::vector<int> y_pred = {1, 1, 0, 0};
  std::vector<int> groups = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(EqualOpportunity(y_true, y_pred, groups), 0.0);
}

TEST(EqualOpportunityTest, IntermediateGap) {
  // Majority TPR = 1, minority TPR = 0.5 -> EO = 0.5.
  std::vector<int> y_true = {1, 1, 1, 1};
  std::vector<int> y_pred = {1, 1, 1, 0};
  std::vector<int> groups = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(EqualOpportunity(y_true, y_pred, groups), 0.5);
}

TEST(EqualOpportunityTest, SymmetricInGroups) {
  std::vector<int> y_true = {1, 1, 1, 1};
  std::vector<int> y_pred = {1, 0, 1, 1};
  std::vector<int> groups_a = {0, 0, 1, 1};
  std::vector<int> groups_b = {1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(EqualOpportunity(y_true, y_pred, groups_a),
                   EqualOpportunity(y_true, y_pred, groups_b));
}

TEST(EqualOpportunityTest, GroupWithoutPositivesIsFair) {
  std::vector<int> y_true = {1, 0, 0, 0};
  std::vector<int> y_pred = {1, 0, 1, 0};
  std::vector<int> groups = {0, 0, 1, 1};  // minority has no positives
  EXPECT_DOUBLE_EQ(EqualOpportunity(y_true, y_pred, groups), 1.0);
}

TEST(EqualOpportunityTest, IgnoresNegativesEntirely) {
  // Wildly unequal false-positive behavior does not affect EO.
  std::vector<int> y_true = {1, 1, 0, 0, 0, 0};
  std::vector<int> y_pred_fp = {1, 1, 1, 1, 0, 0};
  std::vector<int> y_pred_clean = {1, 1, 0, 0, 0, 0};
  std::vector<int> groups = {0, 1, 0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(EqualOpportunity(y_true, y_pred_fp, groups),
                   EqualOpportunity(y_true, y_pred_clean, groups));
}

TEST(StatisticalParityTest, PerfectAndWorst) {
  std::vector<int> groups = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(StatisticalParity({1, 0, 1, 0}, groups), 1.0);
  EXPECT_DOUBLE_EQ(StatisticalParity({1, 1, 0, 0}, groups), 0.0);
}

TEST(StatisticalParityTest, SingleGroupIsFair) {
  EXPECT_DOUBLE_EQ(StatisticalParity({1, 0}, {0, 0}), 1.0);
}

}  // namespace
}  // namespace dfs::metrics
