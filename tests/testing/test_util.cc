#include "testing/test_util.h"

#include "util/logging.h"

namespace dfs::testing {

data::Dataset MakeLinearDataset(int rows, int noise_features, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> columns(2 + noise_features,
                                           std::vector<double>(rows));
  std::vector<int> labels(rows);
  std::vector<int> groups(rows);
  for (int r = 0; r < rows; ++r) {
    const double a = rng.Uniform();
    const double b = rng.Uniform();
    columns[0][r] = a;
    columns[1][r] = b;
    labels[r] = a + b + rng.Normal(0.0, 0.05) > 1.0 ? 1 : 0;
    groups[r] = rng.Uniform() < 0.5 * a + 0.25 ? 1 : 0;
    for (int f = 0; f < noise_features; ++f) {
      columns[2 + f][r] = rng.Uniform();
    }
  }
  std::vector<std::string> names = {"signal_a", "signal_b"};
  for (int f = 0; f < noise_features; ++f) {
    names.push_back("noise_" + std::to_string(f));
  }
  auto dataset = data::Dataset::Create("linear", std::move(names),
                                       std::move(columns), std::move(labels),
                                       std::move(groups));
  DFS_CHECK(dataset.ok());
  return std::move(dataset).value();
}

data::Dataset MakeTinyDataset() {
  auto dataset = data::Dataset::Create(
      "tiny", {"f0", "f1", "f2"},
      {{0.0, 0.1, 0.2, 0.8, 0.9, 1.0, 0.85, 0.15},
       {1.0, 0.9, 0.8, 0.2, 0.1, 0.0, 0.25, 0.75},
       {0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5}},
      {0, 0, 0, 1, 1, 1, 1, 0}, {0, 1, 0, 1, 0, 1, 0, 1});
  DFS_CHECK(dataset.ok());
  return std::move(dataset).value();
}

FakeEvalContext::FakeEvalContext(
    int num_features, std::function<double(const fs::FeatureMask&)> objective,
    int eval_budget)
    : num_features_(num_features), max_feature_count_(num_features),
      objective_(std::move(objective)), eval_budget_(eval_budget),
      train_(MakeTinyDataset()) {}

fs::EvalOutcome FakeEvalContext::Evaluate(const fs::FeatureMask& mask) {
  fs::EvalOutcome outcome;
  if (ShouldStop()) return outcome;
  if (fs::CountSelected(mask) == 0) return outcome;
  ++evaluations_;
  outcome.evaluated = true;
  outcome.objective = objective_(mask);
  outcome.distance = std::max(0.0, outcome.objective);
  outcome.satisfied_validation = outcome.objective <= 0.0;
  outcome.success = outcome.satisfied_validation;
  if (outcome.objective < best_objective_) {
    best_objective_ = outcome.objective;
    best_mask_ = mask;
  }
  if (outcome.success) success_ = true;
  return outcome;
}

StatusOr<std::vector<double>> FakeEvalContext::FittedImportances(
    const fs::FeatureMask& mask) {
  const std::vector<int> selected = fs::MaskToIndices(mask);
  if (selected.empty()) return InvalidArgumentError("empty mask");
  std::vector<double> result;
  for (int f : selected) {
    result.push_back(f < static_cast<int>(importances_.size())
                         ? importances_[f]
                         : 0.0);
  }
  return result;
}

std::function<double(const fs::FeatureMask&)> BitMismatchObjective(
    fs::FeatureMask target) {
  return [target = std::move(target)](const fs::FeatureMask& mask) {
    DFS_CHECK_EQ(mask.size(), target.size());
    double mismatches = 0.0;
    for (size_t f = 0; f < mask.size(); ++f) {
      if ((mask[f] != 0) != (target[f] != 0)) mismatches += 1.0;
    }
    return mismatches;
  };
}

}  // namespace dfs::testing
