#ifndef DFS_TESTS_TESTING_TEST_UTIL_H_
#define DFS_TESTS_TESTING_TEST_UTIL_H_

#include <functional>
#include <vector>

#include "constraints/constraint_set.h"
#include "data/dataset.h"
#include "fs/eval_context.h"
#include "util/rng.h"

namespace dfs::testing {

/// Deterministic linearly-separable-ish dataset: label = 1 iff
/// col0 + col1 > 1 (with slight noise), plus `noise_features` random
/// columns. Groups follow a noisy copy of col0 so fairness metrics have
/// structure. All columns lie in [0, 1].
data::Dataset MakeLinearDataset(int rows, int noise_features, uint64_t seed);

/// Tiny hand-written dataset (8 rows, 3 features) for exact-value tests.
data::Dataset MakeTinyDataset();

/// Scriptable EvalContext for strategy unit tests: the objective of a mask
/// is supplied by a lambda; success fires when the objective drops to <= 0.
/// Counts evaluations and enforces an evaluation budget in place of a
/// wall-clock deadline.
class FakeEvalContext : public fs::EvalContext {
 public:
  FakeEvalContext(int num_features,
                  std::function<double(const fs::FeatureMask&)> objective,
                  int eval_budget = 100000);

  int num_features() const override { return num_features_; }
  int max_feature_count() const override { return max_feature_count_; }
  const constraints::ConstraintSet& constraint_set() const override {
    return constraint_set_;
  }
  const data::Dataset& train_data() const override { return train_; }
  bool ShouldStop() const override {
    return success_ || evaluations_ >= eval_budget_;
  }
  double RemainingSeconds() const override {
    return ShouldStop() ? 0.0 : 1.0;
  }
  Rng& rng() override { return rng_; }
  fs::EvalOutcome Evaluate(const fs::FeatureMask& mask) override;
  StatusOr<std::vector<double>> FittedImportances(
      const fs::FeatureMask& mask) override;

  void set_max_feature_count(int count) { max_feature_count_ = count; }
  void set_constraint_set(const constraints::ConstraintSet& set) {
    constraint_set_ = set;
  }
  void set_importances(std::vector<double> importances) {
    importances_ = std::move(importances);
  }
  void set_train_data(data::Dataset dataset) { train_ = std::move(dataset); }

  int evaluations() const { return evaluations_; }
  bool success() const { return success_; }
  const fs::FeatureMask& best_mask() const { return best_mask_; }
  double best_objective() const { return best_objective_; }

 private:
  int num_features_;
  int max_feature_count_;
  std::function<double(const fs::FeatureMask&)> objective_;
  int eval_budget_;
  constraints::ConstraintSet constraint_set_;
  data::Dataset train_;
  Rng rng_{123};
  std::vector<double> importances_;

  int evaluations_ = 0;
  bool success_ = false;
  fs::FeatureMask best_mask_;
  double best_objective_ = 1e18;
};

/// Objective with minimum 0 at exactly `target`: counts mismatched bits.
std::function<double(const fs::FeatureMask&)> BitMismatchObjective(
    fs::FeatureMask target);

}  // namespace dfs::testing

#endif  // DFS_TESTS_TESTING_TEST_UTIL_H_
