// Bring-your-own-data: the full pipeline from a CSV (mixed numeric and
// categorical attributes, missing values) through the standard
// preprocessing of Section 6.1 (mean imputation, min-max scaling, one-hot
// encoding) into a declarative feature-selection run.

#include <cstdio>

#include "core/dfs.h"
#include "data/preprocess.h"
#include "data/raw_dataset.h"
#include "util/csv.h"

namespace {

// A small loan dataset a user might hand in. In practice you would call
// dfs::ReadCsvFile("loans.csv") instead.
constexpr const char* kCsv =
    "age,income,city,defaulted,gender\n"
    "25,48000,berlin,0,0\n"
    "38,,hamburg,0,1\n"
    "52,61000,berlin,0,0\n"
    "23,12000,,1,1\n"
    "61,87000,munich,0,0\n"
    "33,23000,hamburg,1,1\n"
    "45,52000,berlin,0,0\n"
    "29,19000,munich,1,1\n"
    "57,75000,berlin,0,0\n"
    "41,31000,hamburg,1,0\n"
    "36,45000,munich,0,1\n"
    "27,16000,berlin,1,1\n"
    "49,58000,hamburg,0,0\n"
    "31,21000,munich,1,0\n"
    "55,69000,berlin,0,1\n"
    "26,15000,hamburg,1,0\n"
    "44,49500,munich,0,1\n"
    "30,18500,berlin,1,0\n"
    "53,64000,hamburg,0,1\n"
    "28,17500,munich,1,0\n"
    "47,55000,berlin,0,1\n"
    "32,22500,hamburg,1,0\n"
    "59,78000,munich,0,1\n"
    "24,13500,berlin,1,0\n";

int Run() {
  // 1. Parse CSV and identify target/sensitive columns.
  auto table_or = dfs::ParseCsv(kCsv);
  if (!table_or.ok()) return 1;
  auto raw_or = dfs::data::RawDatasetFromCsv(*table_or, /*target=*/"defaulted",
                                             /*sensitive=*/"gender", "loans");
  if (!raw_or.ok()) {
    std::fprintf(stderr, "%s\n", raw_or.status().ToString().c_str());
    return 1;
  }
  std::printf("raw: %d rows, %d attributes (sensitive: %s)\n",
              raw_or->num_rows(), raw_or->num_attributes(),
              raw_or->sensitive_attribute_name.c_str());

  // 2. Standard preprocessing: imputation + scaling + one-hot encoding.
  auto dataset_or = dfs::data::Preprocess(*raw_or);
  if (!dataset_or.ok()) {
    std::fprintf(stderr, "%s\n", dataset_or.status().ToString().c_str());
    return 1;
  }
  std::printf("encoded features (%d):\n", dataset_or->num_features());
  for (const auto& name : dataset_or->feature_names()) {
    std::printf("  %s\n", name.c_str());
  }

  // 3. Declare and search.
  dfs::core::DeclarativeFeatureSelection dfs(*dataset_or, 3);
  dfs.SetModel(dfs::ml::ModelKind::kDecisionTree)
      .SetConstraints(dfs::constraints::ConstraintSetBuilder()
                          .MinF1(0.6)
                          .MaxFeatureFraction(0.6)
                          .MaxSearchSeconds(5.0)
                          .Build()
                          .value());
  auto result = dfs.Select(dfs::fs::StrategyId::kExhaustive);
  if (!result.ok()) return 1;
  std::printf("\nsuccess=%s, selected:\n", result->success ? "yes" : "no");
  for (const auto& name : result->feature_names) {
    std::printf("  - %s\n", name.c_str());
  }
  std::printf("test F1 = %.3f\n", result->test_values.f1);
  return 0;
}

}  // namespace

int main() { return Run(); }
