// Fairness scenario on COMPAS: enforce equal opportunity via feature
// selection, inspect which features were pruned, and verify the constraint
// transfers to a different model class (Section 6.3, "Reusability of
// Feature Sets across Models").
//
// COMPAS is the motivating dataset of the paper's Figure 1: its label is
// biased against the minority group and several features are proxies for
// race, so simply dropping the sensitive column is not enough.

#include <cstdio>
#include <string>

#include "core/dfs.h"
#include "data/benchmark_suite.h"
#include "metrics/classification.h"
#include "metrics/fairness.h"
#include "ml/classifier.h"

namespace {

void PrintOutcome(const char* label, const dfs::core::DfsResult& result) {
  std::printf("%-24s success=%-3s  |F'|=%-3zu  test F1=%.3f  test EO=%.3f\n",
              label, result.success ? "yes" : "no", result.features.size(),
              result.test_values.f1, result.test_values.equal_opportunity);
}

int Run() {
  auto dataset_or = dfs::data::GenerateBenchmarkDataset(/*COMPAS=*/6, 11);
  if (!dataset_or.ok()) return 1;
  const dfs::data::Dataset& compas = *dataset_or;
  std::printf("COMPAS stand-in: %d rows, %d features\n\n",
              compas.num_rows(), compas.num_features());

  // Baseline: accuracy-only scenario. The found subset is free to keep the
  // biased proxy features.
  dfs::core::DeclarativeFeatureSelection accuracy_only(compas, 5);
  accuracy_only.SetConstraints(dfs::constraints::ConstraintSetBuilder()
                                   .MinF1(0.74)
                                   .MaxSearchSeconds(8.0)
                                   .Build()
                                   .value());
  auto plain = accuracy_only.Select(dfs::fs::StrategyId::kSffs);
  if (!plain.ok()) return 1;
  PrintOutcome("accuracy only:", *plain);

  // Fair scenario: same accuracy floor plus EO >= 0.92.
  dfs::core::DeclarativeFeatureSelection fair(compas, 5);
  fair.SetConstraints(dfs::constraints::ConstraintSetBuilder()
                          .MinF1(0.70)
                          .MinEqualOpportunity(0.92)
                          .MaxSearchSeconds(8.0)
                          .Build()
                          .value());
  auto constrained = fair.Select(dfs::fs::StrategyId::kSffs);
  if (!constrained.ok()) return 1;
  PrintOutcome("with EO constraint:", *constrained);

  // Which features did the fair subset avoid? Proxies carry "proxy" in
  // their generated names; real datasets need domain knowledge here.
  std::printf("\nfair subset:\n");
  for (const auto& name : constrained->feature_names) {
    std::printf("  - %s\n", name.c_str());
  }
  int proxies_kept = 0;
  for (const auto& name : constrained->feature_names) {
    if (name.find("proxy") != std::string::npos ||
        name == "Race") {
      ++proxies_kept;
    }
  }
  std::printf("biased features kept: %d\n", proxies_kept);

  // Transferability: retrain a decision tree on the very same subset and
  // re-check the constraints — no new search (Table 7's experiment).
  if (constrained->success) {
    dfs::Rng rng(17);
    auto split_or = dfs::data::StratifiedSplit(compas, 3, 1, 1, rng);
    if (!split_or.ok()) return 1;
    auto tree = dfs::ml::CreateClassifier(dfs::ml::ModelKind::kDecisionTree,
                                          dfs::ml::Hyperparameters());
    const auto x_train = split_or->train.ToMatrix(constrained->features);
    if (!tree->Fit(x_train, split_or->train.labels()).ok()) return 1;
    const auto x_test = split_or->test.ToMatrix(constrained->features);
    const auto predictions = tree->PredictBatch(x_test);
    const double f1 =
        dfs::metrics::F1Score(split_or->test.labels(), predictions);
    const double eo = dfs::metrics::EqualOpportunity(
        split_or->test.labels(), predictions, split_or->test.groups());
    std::printf("\nsame subset under DT: F1=%.3f EO=%.3f -> constraints %s\n",
                f1, eo, (f1 >= 0.70 && eo >= 0.92) ? "still hold" : "broken");
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
