// Adversarial-safety scenario on German Credit with a strategy portfolio:
// run several FS strategies in parallel and take the first satisfying
// answer (Section 6.5 — "running 5 strategies in parallel leads to 94%
// coverage or 52% fastest answers").
//
// The safety metric attacks the trained model with the black-box
// HopSkipJump evasion attack and requires the F1 drop to stay small.

#include <cstdio>

#include "core/dfs.h"
#include "data/benchmark_suite.h"

namespace {

int Run() {
  auto dataset_or = dfs::data::GenerateBenchmarkDataset(/*German=*/12, 29);
  if (!dataset_or.ok()) return 1;
  const dfs::data::Dataset& credit = *dataset_or;
  std::printf("German Credit stand-in: %d rows, %d features\n\n",
              credit.num_rows(), credit.num_features());

  dfs::core::DeclarativeFeatureSelection dfs(credit, 31);
  dfs.SetModel(dfs::ml::ModelKind::kDecisionTree)
      .SetConstraints(dfs::constraints::ConstraintSetBuilder()
                          .MinF1(0.55)
                          .MinSafety(0.85)
                          .MaxFeatureFraction(0.4)
                          .MaxSearchSeconds(12.0)
                          .Build()
                          .value());

  // The paper's best 5-strategy portfolio (Table 8, coverage objective).
  const std::vector<dfs::fs::StrategyId> portfolio = {
      dfs::fs::StrategyId::kTpeFcbf, dfs::fs::StrategyId::kSffs,
      dfs::fs::StrategyId::kTpeMask, dfs::fs::StrategyId::kTpeMim,
      dfs::fs::StrategyId::kSimulatedAnnealing,
  };
  auto result = dfs.SelectParallel(portfolio, /*num_threads=*/2);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("winner: %s (%.2fs), success=%s\n", result->strategy.c_str(),
              result->search_seconds, result->success ? "yes" : "no");
  std::printf("selected %zu/%d features\n", result->features.size(),
              credit.num_features());
  std::printf("test: F1=%.3f safety=%.3f\n", result->test_values.f1,
              result->test_values.safety);
  std::printf(
      "\nFewer features = smaller attack surface: the paper observes a\n"
      "strong negative correlation between feature count and empirical\n"
      "robustness, which is why size-reducing strategies win here.\n");
  return 0;
}

}  // namespace

int main() { return Run(); }
