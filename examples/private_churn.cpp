// Differential privacy scenario on Telco Customer Churn: declaring a
// privacy epsilon makes the engine train the epsilon-DP variant of the
// model (Section 3, Min Privacy), so any subset it returns is private by
// construction. This example sweeps epsilon to show the privacy/utility
// trade-off and how feature selection softens it.

#include <cstdio>

#include "core/dfs.h"
#include "data/benchmark_suite.h"

namespace {

int Run() {
  auto dataset_or = dfs::data::GenerateBenchmarkDataset(/*Telco=*/5, 13);
  if (!dataset_or.ok()) return 1;
  const dfs::data::Dataset& telco = *dataset_or;
  std::printf("Telco stand-in: %d rows, %d features\n\n", telco.num_rows(),
              telco.num_features());
  std::printf("%-10s %-9s %-9s %-12s %s\n", "epsilon", "success",
              "test F1", "|selected|", "note");

  for (double epsilon : {100.0, 10.0, 2.0, 0.5, 0.05}) {
    dfs::core::DeclarativeFeatureSelection dfs(telco, 23);
    dfs.SetModel(dfs::ml::ModelKind::kLogisticRegression)
        // 0.72 is well above the trivial predict-all-positive baseline, so the
        // private model must actually carry signal to satisfy it.
        .SetConstraints(dfs::constraints::ConstraintSetBuilder()
                            .MinF1(0.72)
                            .PrivacyEpsilon(epsilon)
                            .MaxSearchSeconds(6.0)
                            .Build()
                            .value());
    // Forward selection: the paper finds it best for privacy constraints
    // because private models prefer few features (less noise per weight).
    auto result = dfs.Select(dfs::fs::StrategyId::kSfs);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-10.2f %-9s %-9.3f %-12zu %s\n", epsilon,
                result->success ? "yes" : "no", result->test_values.f1,
                result->features.size(),
                epsilon < 0.1 ? "(noise may dominate)" : "");
  }

  std::printf(
      "\nSmaller epsilon = stronger privacy = noisier model; feature\n"
      "selection counters it by concentrating the privacy budget on a\n"
      "small informative subset.\n");
  return 0;
}

}  // namespace

int main() { return Run(); }
