// Extensions beyond the paper's core study (its Section-7 future work):
//
//  1. TimeSlicedPortfolio — dynamic strategy switching on ONE budget: the
//     engine interleaves several FS strategies in growing time slices,
//     warm-started through the shared evaluation cache.
//  2. SelectModelAndFeatures — "declarative AutoML": the model class itself
//     becomes part of the search, so the user declares only constraints.

#include <cstdio>

#include "core/dfs.h"
#include "core/engine.h"
#include "data/benchmark_suite.h"
#include "fs/portfolio.h"

namespace {

int Run() {
  auto dataset_or = dfs::data::GenerateBenchmarkDataset(/*Students=*/7, 41);
  if (!dataset_or.ok()) return 1;
  const dfs::data::Dataset& students = *dataset_or;
  std::printf("Students stand-in: %d rows, %d features\n\n",
              students.num_rows(), students.num_features());

  const auto constraints = dfs::constraints::ConstraintSetBuilder()
                               .MinF1(0.7)
                               .MaxFeatureFraction(0.5)
                               .MaxSearchSeconds(6.0)
                               .Build()
                               .value();

  // --- 1. Dynamic strategy switching on a single engine ---------------
  {
    dfs::Rng rng(43);
    auto scenario_or = dfs::core::MakeScenario(
        students, dfs::ml::ModelKind::kLogisticRegression, constraints, rng);
    if (!scenario_or.ok()) return 1;
    dfs::core::DfsEngine engine(*scenario_or, dfs::core::EngineOptions());
    dfs::fs::TimeSlicedPortfolio portfolio(
        {dfs::fs::StrategyId::kTpeFcbf, dfs::fs::StrategyId::kSffs,
         dfs::fs::StrategyId::kTpeMask},
        /*seed=*/45);
    const dfs::core::RunResult result = engine.Run(portfolio);
    std::printf("[portfolio] %s -> success=%s in %.2fs, |F'|=%d, "
                "evaluations=%d (cache hits %d)\n",
                portfolio.name().c_str(), result.success ? "yes" : "no",
                result.search_seconds, dfs::fs::CountSelected(result.selected),
                result.evaluations, result.cache_hits);
  }

  // --- 2. Declarative AutoML: model + features from constraints -------
  {
    dfs::core::DeclarativeFeatureSelection dfs(students, 47);
    dfs.SetConstraints(constraints).UseHpo(true);
    auto result = dfs.SelectModelAndFeatures(
        {dfs::ml::ModelKind::kNaiveBayes, dfs::ml::ModelKind::kDecisionTree,
         dfs::ml::ModelKind::kLogisticRegression},
        dfs::fs::StrategyId::kSffs);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("[automl]    chose model=%s via %s -> success=%s, "
                "test F1=%.3f with %zu features\n",
                result->model.c_str(), result->strategy.c_str(),
                result->success ? "yes" : "no", result->test_values.f1,
                result->features.size());
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
