// Quickstart: declare constraints, let DFS find a feature subset.
//
// This is the end-to-end "hello world" of the library: generate a benchmark
// dataset (a synthetic stand-in for OpenML's Adult), declare an ML scenario
// — model, minimum F1, fairness floor, search budget — and ask one feature
// selection strategy for a satisfying subset.

#include <cstdio>

#include "core/dfs.h"
#include "data/benchmark_suite.h"

namespace {

int Run() {
  // 1. A dataset. Any dfs::data::Dataset works (see custom_csv.cpp for
  //    loading your own); here we grab "Adult" from the benchmark suite.
  auto dataset_or = dfs::data::GenerateBenchmarkDataset(/*index=*/2,
                                                        /*seed=*/7,
                                                        /*row_scale=*/0.5);
  if (!dataset_or.ok()) {
    std::fprintf(stderr, "dataset: %s\n",
                 dataset_or.status().ToString().c_str());
    return 1;
  }
  const dfs::data::Dataset& dataset = *dataset_or;
  std::printf("dataset: %s (%d rows, %d encoded features)\n",
              dataset.name().c_str(), dataset.num_rows(),
              dataset.num_features());

  // 2. Declare the scenario: model + constraints. Everything is a
  //    declaration; no constraint-specific model engineering.
  auto constraints_or = dfs::constraints::ConstraintSetBuilder()
                            .MinF1(0.72)
                            .MinEqualOpportunity(0.90)
                            .MaxFeatureFraction(0.5)
                            .MaxSearchSeconds(10.0)
                            .Build();
  if (!constraints_or.ok()) {
    std::fprintf(stderr, "constraints: %s\n",
                 constraints_or.status().ToString().c_str());
    return 1;
  }

  dfs::core::DeclarativeFeatureSelection dfs(dataset, /*seed=*/42);
  dfs.SetModel(dfs::ml::ModelKind::kLogisticRegression)
      .SetConstraints(*constraints_or)
      .UseHpo(true);

  // 3. Search. SFFS(NR) is the paper's strongest all-round strategy.
  auto result_or = dfs.Select(dfs::fs::StrategyId::kSffs);
  if (!result_or.ok()) {
    std::fprintf(stderr, "select: %s\n",
                 result_or.status().ToString().c_str());
    return 1;
  }
  const dfs::core::DfsResult& result = *result_or;

  std::printf("strategy: %s\n", result.strategy.c_str());
  std::printf("success:  %s (%.2fs)\n", result.success ? "yes" : "no",
              result.search_seconds);
  std::printf("selected %zu features:\n", result.features.size());
  for (const auto& name : result.feature_names) {
    std::printf("  - %s\n", name.c_str());
  }
  std::printf("validation: F1=%.3f EO=%.3f\n", result.validation_values.f1,
              result.validation_values.equal_opportunity);
  std::printf("test:       F1=%.3f EO=%.3f\n", result.test_values.f1,
              result.test_values.equal_opportunity);
  return result.success ? 0 : 2;
}

}  // namespace

int main() { return Run(); }
