// dfs_route_replay — verifies the router's determinism/replay contract.
//
//   dfs_route_replay --trace spans.jsonl --snapshot router.state
//   dfs_route_replay --self-check
//
// Verify mode re-derives every "router.decision" record of a trace file
// (dfs_serverd --trace-out) against a router snapshot (dfs_serverd
// --router-state, saved at shutdown) and byte-compares each re-derived
// record with the traced one (DESIGN.md §2g). Exit codes: 0 = every
// checked decision replayed byte-identically, 1 = at least one mismatch
// (or an I/O / parse error), 2 = nothing to check (no decision in the
// trace matches the snapshot's optimizer generation).
//
// --self-check runs a hermetic end-to-end exercise of the contract (used
// as the router.replay_selfcheck ctest entry): for each policy it routes
// synthetic traffic with the online loop enabled, snapshots, restores, and
// requires byte-identical replay.

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "router/replay.h"
#include "router/router.h"
#include "util/flags.h"

namespace dfs {
namespace {

struct ReplayOptions {
  std::string trace;     // TraceWriter JSONL file
  std::string snapshot;  // router snapshot (StrategyRouter::SaveToFile)
  bool self_check = false;
  bool help = false;
};

int RunVerify(const ReplayOptions& options) {
  router::StrategyRouter router;
  if (Status status = router.LoadFromFile(options.snapshot); !status.ok()) {
    std::fprintf(stderr, "snapshot: %s\n", status.ToString().c_str());
    return 1;
  }
  std::ifstream in(options.trace, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "trace: cannot open %s\n", options.trace.c_str());
    return 1;
  }
  std::ostringstream trace;
  trace << in.rdbuf();

  auto report = router::VerifyTrace(router, trace.str());
  if (!report.ok()) {
    std::fprintf(stderr, "verify: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "dfs_route_replay: checked=%llu skipped=%llu mismatched=%llu\n",
      static_cast<unsigned long long>(report->checked),
      static_cast<unsigned long long>(report->skipped),
      static_cast<unsigned long long>(report->mismatched));
  for (const std::string& diff : report->mismatches) {
    std::fprintf(stderr, "mismatch at %s\n", diff.c_str());
  }
  if (report->mismatched > 0) return 1;
  if (report->checked == 0) {
    std::fprintf(stderr,
                 "no replayable decision: every trace record belongs to a "
                 "different optimizer generation than the snapshot\n");
    return 2;
  }
  return 0;
}

int RealMain(int argc, char** argv) {
  ReplayOptions options;
  FlagParser parser(
      "dfs_route_replay — replays routing decisions from a trace against a "
      "router snapshot and verifies byte-identical determinism");
  parser.AddString("trace",
                   "JSONL trace file holding router.decision spans "
                   "(dfs_serverd --trace-out)",
                   &options.trace);
  parser.AddString("snapshot",
                   "router snapshot file (dfs_serverd --router-state)",
                   &options.snapshot);
  parser.AddBool("self-check",
                 "run the hermetic replay self-check instead of verifying "
                 "a trace",
                 &options.self_check);
  parser.AddBool("help", "print usage", &options.help);
  if (Status status = parser.Parse(argc, argv); !status.ok()) {
    std::fprintf(stderr, "%s\n\n%s", status.ToString().c_str(),
                 parser.Help().c_str());
    return 1;
  }
  if (options.help) {
    std::fputs(parser.Help().c_str(), stdout);
    return 0;
  }

  if (options.self_check) {
    // getpid() keeps concurrent ctest invocations off each other's files.
    const std::string prefix =
        "dfs_route_replay_selfcheck." + std::to_string(getpid());
    if (Status status = router::ReplaySelfCheck(prefix); !status.ok()) {
      std::fprintf(stderr, "self-check: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("dfs_route_replay --self-check: all policies replayed "
                "byte-identically\n");
    return 0;
  }

  if (options.trace.empty() || options.snapshot.empty()) {
    std::fprintf(stderr,
                 "need --trace and --snapshot (or --self-check)\n\n%s",
                 parser.Help().c_str());
    return 1;
  }
  return RunVerify(options);
}

}  // namespace
}  // namespace dfs

int main(int argc, char** argv) { return dfs::RealMain(argc, argv); }
