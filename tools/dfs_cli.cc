// dfs_cli — run declarative feature selection on your own dataset.
//
//   dfs_cli --data loans.csv --target defaulted --sensitive gender \
//           --min-f1 0.7 --min-eo 0.9 --budget 30 --strategy "SFFS(NR)"
//
// Input is CSV (binary 0/1 target & sensitive columns) or ARFF (binary
// nominal target & sensitive attributes, chosen by file extension). The
// standard preprocessing pipeline (imputation, scaling, one-hot encoding)
// is applied before the search. `--strategy portfolio` runs the paper's
// best 5-strategy portfolio in parallel; `--strategy list` prints every
// available strategy.

#include <cstdio>
#include <fstream>
#include <iostream>

#include "core/dfs.h"
#include "core/engine.h"
#include "data/arff.h"
#include "data/preprocess.h"
#include "data/raw_dataset.h"
#include "fs/registry.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/string_util.h"

namespace dfs {
namespace {

struct CliOptions {
  std::string data;
  std::string target;
  std::string sensitive;
  std::string model = "LR";
  std::string strategy = "SFFS(NR)";
  double min_f1 = 0.7;
  double min_eo = -1.0;
  double min_safety = -1.0;
  double max_features = -1.0;
  double epsilon = -1.0;
  double budget = 30.0;
  bool hpo = false;
  bool utility = false;
  std::string trace;  // CSV path for the per-evaluation search trace
  int seed = 42;
  bool help = false;
};

void RegisterFlags(FlagParser& parser, CliOptions& options) {
  parser.AddString("data", "input dataset (.csv or .arff)", &options.data);
  parser.AddString("target", "binary target column/attribute",
                   &options.target);
  parser.AddString("sensitive", "binary sensitive column/attribute",
                   &options.sensitive);
  parser.AddString("model", "classification model: LR, NB, DT, SVM",
                   &options.model);
  parser.AddString("strategy",
                   "FS strategy name (e.g. \"SFFS(NR)\", \"TPE(FCBF)\"), "
                   "\"portfolio\", or \"list\"",
                   &options.strategy);
  parser.AddDouble("min-f1", "mandatory minimum F1 score", &options.min_f1);
  parser.AddDouble("min-eo", "minimum equal opportunity (omit to disable)",
                   &options.min_eo);
  parser.AddDouble("min-safety",
                   "minimum adversarial safety (omit to disable)",
                   &options.min_safety);
  parser.AddDouble("max-features",
                   "maximum feature fraction in (0, 1] (omit to disable)",
                   &options.max_features);
  parser.AddDouble("epsilon",
                   "differential-privacy epsilon (omit to disable)",
                   &options.epsilon);
  parser.AddDouble("budget", "maximum search time in seconds",
                   &options.budget);
  parser.AddBool("hpo", "grid-search model hyperparameters per evaluation",
                 &options.hpo);
  parser.AddBool("utility",
                 "maximize F1 subject to the constraints (Eq. 2)",
                 &options.utility);
  parser.AddString("trace",
                   "write the per-evaluation search trace to this CSV file",
                   &options.trace);
  parser.AddInt("seed", "random seed", &options.seed);
  parser.AddBool("help", "print usage", &options.help);
}

void PrintStrategyList() {
  std::printf("benchmarked strategies (Section 4.2):\n");
  for (fs::StrategyId id : fs::AllStrategies()) {
    std::printf("  %s\n", fs::StrategyIdToString(id).c_str());
  }
  std::printf("extensions:\n");
  for (fs::StrategyId id : fs::ExtensionStrategies()) {
    std::printf("  %s\n", fs::StrategyIdToString(id).c_str());
  }
  std::printf("meta:\n  portfolio  (parallel 5-strategy pool, Table 8)\n");
}

StatusOr<data::RawDataset> LoadRaw(const CliOptions& options) {
  if (EndsWith(ToLower(options.data), ".arff")) {
    return data::ReadArffFile(options.data, options.target,
                              options.sensitive);
  }
  DFS_ASSIGN_OR_RETURN(CsvTable table, ReadCsvFile(options.data));
  return data::RawDatasetFromCsv(table, options.target, options.sensitive,
                                 options.data);
}

StatusOr<ml::ModelKind> ParseModel(const std::string& name) {
  const std::string upper = ToLower(name);
  if (upper == "lr") return ml::ModelKind::kLogisticRegression;
  if (upper == "nb") return ml::ModelKind::kNaiveBayes;
  if (upper == "dt") return ml::ModelKind::kDecisionTree;
  if (upper == "svm") return ml::ModelKind::kLinearSvm;
  return InvalidArgumentError("unknown model: " + name);
}

int RealMain(int argc, char** argv) {
  CliOptions options;
  FlagParser parser(
      "dfs_cli — declarative feature selection (DFS, SIGMOD 2021 "
      "reproduction)");
  RegisterFlags(parser, options);
  if (Status status = parser.Parse(argc, argv); !status.ok()) {
    std::fprintf(stderr, "%s\n\n%s", status.ToString().c_str(),
                 parser.Help().c_str());
    return 1;
  }
  if (options.help) {
    std::fputs(parser.Help().c_str(), stdout);
    return 0;
  }
  if (options.strategy == "list") {
    PrintStrategyList();
    return 0;
  }
  if (options.data.empty() || options.target.empty() ||
      options.sensitive.empty()) {
    std::fprintf(stderr,
                 "--data, --target and --sensitive are required\n\n%s",
                 parser.Help().c_str());
    return 1;
  }

  auto raw = LoadRaw(options);
  if (!raw.ok()) {
    std::fprintf(stderr, "load: %s\n", raw.status().ToString().c_str());
    return 1;
  }
  auto dataset = data::Preprocess(*raw);
  if (!dataset.ok()) {
    std::fprintf(stderr, "preprocess: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("dataset: %s — %d rows, %d attributes -> %d encoded features\n",
              dataset->name().c_str(), dataset->num_rows(),
              raw->num_attributes(), dataset->num_features());

  constraints::ConstraintSetBuilder builder;
  builder.MinF1(options.min_f1).MaxSearchSeconds(options.budget);
  if (options.min_eo >= 0) builder.MinEqualOpportunity(options.min_eo);
  if (options.min_safety >= 0) builder.MinSafety(options.min_safety);
  if (options.max_features > 0) builder.MaxFeatureFraction(options.max_features);
  if (options.epsilon > 0) builder.PrivacyEpsilon(options.epsilon);
  auto constraint_set = builder.Build();
  if (!constraint_set.ok()) {
    std::fprintf(stderr, "constraints: %s\n",
                 constraint_set.status().ToString().c_str());
    return 1;
  }
  std::printf("constraints: %s\n", constraint_set->ToString().c_str());

  auto model = ParseModel(options.model);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }

  core::DeclarativeFeatureSelection dfs(
      *dataset, static_cast<uint64_t>(options.seed));
  dfs.SetModel(*model)
      .SetConstraints(*constraint_set)
      .UseHpo(options.hpo)
      .MaximizeUtility(options.utility)
      .RecordTrace(!options.trace.empty());

  StatusOr<core::DfsResult> result = [&]() -> StatusOr<core::DfsResult> {
    if (options.strategy == "portfolio") {
      return dfs.SelectParallel(
          {fs::StrategyId::kTpeFcbf, fs::StrategyId::kSffs,
           fs::StrategyId::kTpeMask, fs::StrategyId::kTpeMim,
           fs::StrategyId::kSimulatedAnnealing},
          /*num_threads=*/4);
    }
    DFS_ASSIGN_OR_RETURN(fs::StrategyId id,
                         fs::StrategyIdFromString(options.strategy));
    return dfs.Select(id);
  }();
  if (!result.ok()) {
    std::fprintf(stderr, "search: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("\nstrategy: %s (model %s)\n", result->strategy.c_str(),
              result->model.c_str());
  std::printf("result:   %s after %.2fs\n",
              result->success ? "ALL CONSTRAINTS SATISFIED"
                              : "not satisfied (closest subset below)",
              result->search_seconds);
  std::printf("selected %zu/%d features:\n", result->features.size(),
              dataset->num_features());
  for (const auto& name : result->feature_names) {
    std::printf("  - %s\n", name.c_str());
  }
  auto print_values = [](const char* split,
                         const constraints::MetricValues& values) {
    std::printf("%s: F1=%.3f EO=%.3f safety=%.3f fraction=%.2f\n", split,
                values.f1, values.equal_opportunity, values.safety,
                values.feature_fraction);
  };
  print_values("validation", result->validation_values);
  print_values("test      ", result->test_values);

  if (!options.trace.empty()) {
    CsvTable trace;
    trace.header = {"seconds", "selected_features", "objective", "distance",
                    "satisfied_validation", "success"};
    for (const core::TracePoint& point : result->trace) {
      trace.rows.push_back({FormatDouble(point.seconds, 6),
                            std::to_string(point.selected_features),
                            FormatDouble(point.objective, 6),
                            FormatDouble(point.distance, 6),
                            point.satisfied_validation ? "1" : "0",
                            point.success ? "1" : "0"});
    }
    if (Status status = WriteCsvFile(trace, options.trace); !status.ok()) {
      std::fprintf(stderr, "trace: %s\n", status.ToString().c_str());
    } else {
      std::printf("trace: %zu evaluations written to %s\n",
                  result->trace.size(), options.trace.c_str());
    }
  }
  return result->success ? 0 : 2;
}

}  // namespace
}  // namespace dfs

int main(int argc, char** argv) { return dfs::RealMain(argc, argv); }
