// dfs_serverd — the DFS job-service daemon.
//
//   dfs_serverd --port 7070 --workers 4 --queue-capacity 64 --io-threads 2
//
// Accepts newline-delimited JSON requests (see src/serve/line_protocol.h)
// over TCP and runs declarative feature-selection jobs on a worker fleet.
// The network front-end is an epoll event loop (src/serve/event_loop.h):
// one acceptor plus --io-threads epoll threads multiplexing every
// connection, with admission control past --shed-watermark queued jobs and
// accept-time shedding past --max-connections channels. Datasets are
// addressed by benchmark-suite name and generated on first use;
// --optimizer loads a serialized meta-optimizer so "auto" jobs use the
// Algorithm-1 deployment phase. A client-issued {"op":"shutdown"} stops
// the daemon; running jobs are cancelled cooperatively.

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>

#include "obs/trace.h"
#include "router/policy.h"
#include "serve/event_loop.h"
#include "serve/server.h"
#include "util/flags.h"

namespace dfs {
namespace {

struct DaemonOptions {
  int port = 7070;
  int workers = 4;
  int queue_capacity = 64;
  int io_threads = 2;
  int max_connections = 4096;
  int shed_watermark = 0;  // 0 = request shedding off (queue still rejects)
  double ttl = 300.0;
  double row_scale = 1.0;
  std::string optimizer;  // path to a serialized DfsOptimizer
  std::string trace_out;  // JSONL trace-span output (empty = disabled)
  std::string router_policy = "static";  // static | confidence | epsilon-greedy
  std::string router_state;  // router snapshot path (warm restart)
  std::string eval_cache_state;  // eval-cache spill path (warm restart)
  int router_refit_every = 0;  // online refit cadence (0 = learning off)
  bool expose = false;    // bind all interfaces instead of loopback
  bool help = false;
};

/// The front-end, published for the signal handlers once Start() succeeds.
/// EventLoopFrontEnd::RequestStop is async-signal-safe (an atomic store,
/// shutdown(2) on the listener, one eventfd write(2) per I/O thread), so
/// SIGTERM/SIGINT wake the whole front-end and let the normal exit path
/// run (state spills, stats line) instead of dying with the cache and
/// router snapshots unsaved.
std::atomic<serve::EventLoopFrontEnd*> g_frontend{nullptr};

extern "C" void HandleTerminationSignal(int) {
  if (serve::EventLoopFrontEnd* frontend = g_frontend.load()) {
    frontend->RequestStop();
  }
}

int RealMain(int argc, char** argv) {
  // A client that disconnects while we write its response must surface as
  // EPIPE (the event loop sends with MSG_NOSIGNAL; this covers any other
  // socket write), not kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);

  DaemonOptions options;
  FlagParser parser("dfs_serverd — DFS job-service daemon (line protocol "
                    "over TCP; see DESIGN.md §serve)");
  parser.AddInt("port", "TCP port to listen on", &options.port);
  parser.AddInt("workers", "job worker threads", &options.workers);
  parser.AddInt("queue-capacity",
                "bounded job-queue capacity (full queue rejects submits)",
                &options.queue_capacity);
  parser.AddInt("io-threads",
                "epoll I/O threads multiplexing the connections",
                &options.io_threads);
  parser.AddInt("max-connections",
                "open-channel limit; accepts past it are answered with a "
                "queue_full shed line and closed",
                &options.max_connections);
  parser.AddInt("shed-watermark",
                "admission-control high-water mark: submits are shed with "
                "queue_full once this many jobs are queued (0 disables; "
                "the bounded queue still rejects at capacity)",
                &options.shed_watermark);
  parser.AddDouble("ttl", "seconds to retain terminal job results",
                   &options.ttl);
  parser.AddDouble("row-scale",
                   "row scale for benchmark-suite datasets generated on "
                   "demand",
                   &options.row_scale);
  parser.AddString("optimizer",
                   "path to a serialized DfsOptimizer for \"auto\" jobs",
                   &options.optimizer);
  parser.AddString("trace-out",
                   "write JSONL trace spans (serve.job, engine.run, fs.*, "
                   "router.decision) to this file",
                   &options.trace_out);
  parser.AddString("router-policy",
                   "routing policy for \"auto\" jobs: static, confidence, "
                   "or epsilon-greedy",
                   &options.router_policy);
  parser.AddString("router-state",
                   "router snapshot path: loaded at boot if present, saved "
                   "at shutdown (warm restart). A restored snapshot carries "
                   "the full router configuration, so it takes precedence "
                   "over --router-policy and --router-refit-every",
                   &options.router_state);
  parser.AddString("eval-cache-state",
                   "shared eval-cache spill path (docs/CACHE.md): restored "
                   "at boot if present, saved at shutdown so evaluations "
                   "survive restarts. Stale or corrupt spills are rejected "
                   "loudly (the daemon refuses to start). Defaults to the "
                   "DFS_EVAL_CACHE_STATE env var",
                   &options.eval_cache_state);
  parser.AddInt("router-refit-every",
                "refit the meta-optimizer in the background after this many "
                "routed-job outcomes (0 disables the online loop)",
                &options.router_refit_every);
  parser.AddBool("expose", "bind all interfaces instead of loopback only",
                 &options.expose);
  parser.AddBool("help", "print usage", &options.help);
  if (Status status = parser.Parse(argc, argv); !status.ok()) {
    std::fprintf(stderr, "%s\n\n%s", status.ToString().c_str(),
                 parser.Help().c_str());
    return 1;
  }
  if (options.help) {
    std::fputs(parser.Help().c_str(), stdout);
    return 0;
  }
  if (options.eval_cache_state.empty()) {
    if (const char* env = std::getenv("DFS_EVAL_CACHE_STATE")) {
      options.eval_cache_state = env;
    }
  }

  if (!options.trace_out.empty()) {
    if (Status status = obs::TraceWriter::Open(options.trace_out);
        !status.ok()) {
      std::fprintf(stderr, "trace-out: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("tracing spans to %s\n", options.trace_out.c_str());
  }

  // Reject unknown policy names before the server falls back silently.
  if (auto policy = router::CreatePolicy(options.router_policy, {});
      !policy.ok()) {
    std::fprintf(stderr, "router-policy: %s\n",
                 policy.status().ToString().c_str());
    return 1;
  }

  serve::ServerOptions server_options;
  server_options.num_workers = options.workers;
  server_options.queue_capacity =
      static_cast<size_t>(std::max(1, options.queue_capacity));
  server_options.result_ttl_seconds = options.ttl;
  server_options.dataset_row_scale = options.row_scale;
  server_options.router.policy = options.router_policy;
  server_options.router.refit_every = std::max(0, options.router_refit_every);
  serve::DfsServer server(server_options);

  if (!options.router_state.empty()) {
    const Status status = server.router().LoadFromFile(options.router_state);
    if (status.ok()) {
      std::printf("router state restored from %s\n",
                  options.router_state.c_str());
    } else if (status.code() == StatusCode::kNotFound) {
      std::printf("router state %s not found; starting fresh\n",
                  options.router_state.c_str());
    } else {
      std::fprintf(stderr, "router-state: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  if (!options.eval_cache_state.empty()) {
    auto restored = server.eval_caches().LoadFromFile(options.eval_cache_state);
    if (restored.ok()) {
      std::printf("eval cache restored from %s (%zu entries)\n",
                  options.eval_cache_state.c_str(), *restored);
    } else if (restored.status().code() == StatusCode::kNotFound) {
      std::printf("eval cache %s not found; starting cold\n",
                  options.eval_cache_state.c_str());
    } else {
      // Stale (suite bump) or corrupt spills are rejected loudly: silently
      // starting cold would hide that the warm-restart contract broke.
      std::fprintf(stderr, "eval-cache-state: %s\n",
                   restored.status().ToString().c_str());
      return 1;
    }
  }

  if (!options.optimizer.empty()) {
    auto optimizer = core::DfsOptimizer::LoadFromFile(options.optimizer);
    if (!optimizer.ok()) {
      std::fprintf(stderr, "optimizer: %s\n",
                   optimizer.status().ToString().c_str());
      return 1;
    }
    server.SetOptimizer(std::move(optimizer).value());
    std::printf("meta-optimizer loaded from %s\n", options.optimizer.c_str());
  }

  serve::EventLoopOptions frontend_options;
  frontend_options.port = options.port;
  frontend_options.loopback_only = !options.expose;
  frontend_options.io_threads = options.io_threads;
  frontend_options.max_connections =
      static_cast<size_t>(std::max(1, options.max_connections));
  frontend_options.shed_watermark =
      static_cast<size_t>(std::max(0, options.shed_watermark));
  serve::EventLoopFrontEnd frontend(server, frontend_options);
  if (Status status = frontend.Start(); !status.ok()) {
    std::fprintf(stderr, "listen: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf(
      "dfs_serverd listening on port %d (%d workers, queue %zu, "
      "%d io-threads, max %zu connections)\n",
      frontend.port(), server_options.num_workers,
      server_options.queue_capacity, frontend.options().io_threads,
      frontend.options().max_connections);
  std::fflush(stdout);

  // From here, SIGTERM/SIGINT stop the front-end for a graceful exit:
  // state spills (router + eval cache) still run.
  g_frontend.store(&frontend);
  std::signal(SIGTERM, HandleTerminationSignal);
  std::signal(SIGINT, HandleTerminationSignal);

  // Blocks until a client "shutdown" verb or a termination signal. The
  // event loop owns every channel, so there is no handler-thread reaper
  // and no per-connection bookkeeping to prune here.
  frontend.Wait();
  g_frontend.store(nullptr);

  server.Shutdown(/*cancel_pending=*/true);
  if (!options.router_state.empty()) {
    // After Shutdown the workers have joined, so the router is quiescent —
    // the snapshot is a consistent cut for warm restart and replay.
    if (Status status = server.router().SaveToFile(options.router_state);
        status.ok()) {
      std::printf("router state saved to %s\n", options.router_state.c_str());
    } else {
      std::fprintf(stderr, "router-state save: %s\n",
                   status.ToString().c_str());
    }
  }
  if (!options.eval_cache_state.empty()) {
    // Workers are joined, so the registry is quiescent: the spill is a
    // consistent cut (docs/CACHE.md).
    if (Status status =
            server.eval_caches().SaveToFile(options.eval_cache_state);
        status.ok()) {
      std::printf("eval cache saved to %s\n",
                  options.eval_cache_state.c_str());
    } else {
      std::fprintf(stderr, "eval-cache-state save: %s\n",
                   status.ToString().c_str());
    }
  }
  obs::TraceWriter::Close();

  const serve::ServerStats stats = server.Stats();
  std::printf(
      "dfs_serverd exiting: accepted=%llu completed=%llu failed=%llu "
      "cancelled=%llu timed_out=%llu rejected=%llu\n",
      static_cast<unsigned long long>(stats.accepted),
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.failed),
      static_cast<unsigned long long>(stats.cancelled),
      static_cast<unsigned long long>(stats.timed_out),
      static_cast<unsigned long long>(stats.rejected));
  return 0;
}

}  // namespace
}  // namespace dfs

int main(int argc, char** argv) { return dfs::RealMain(argc, argv); }
