// dfs_serverd — the DFS job-service daemon.
//
//   dfs_serverd --port 7070 --workers 4 --queue-capacity 64
//
// Accepts newline-delimited JSON requests (see src/serve/line_protocol.h)
// over TCP and runs declarative feature-selection jobs on a worker fleet.
// Datasets are addressed by benchmark-suite name and generated on first
// use; --optimizer loads a serialized meta-optimizer so "auto" jobs use
// the Algorithm-1 deployment phase. A client-issued {"op":"shutdown"}
// stops the daemon; running jobs are cancelled cooperatively.

#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/frontend.h"
#include "serve/server.h"
#include "serve/tcp.h"
#include "util/flags.h"

namespace dfs {
namespace {

struct DaemonOptions {
  int port = 7070;
  int workers = 4;
  int queue_capacity = 64;
  double ttl = 300.0;
  double row_scale = 1.0;
  std::string optimizer;  // path to a serialized DfsOptimizer
  bool expose = false;    // bind all interfaces instead of loopback
  bool help = false;
};

/// Per-connection bookkeeping so shutdown can unblock readers.
struct Connections {
  std::mutex mu;
  std::vector<std::shared_ptr<serve::LineChannel>> channels;

  void Add(const std::shared_ptr<serve::LineChannel>& channel) {
    std::lock_guard<std::mutex> lock(mu);
    channels.push_back(channel);
  }
  void ShutdownAll() {
    std::lock_guard<std::mutex> lock(mu);
    for (const auto& channel : channels) channel->ShutdownSocket();
  }
};

int RealMain(int argc, char** argv) {
  DaemonOptions options;
  FlagParser parser("dfs_serverd — DFS job-service daemon (line protocol "
                    "over TCP; see DESIGN.md §serve)");
  parser.AddInt("port", "TCP port to listen on", &options.port);
  parser.AddInt("workers", "job worker threads", &options.workers);
  parser.AddInt("queue-capacity",
                "bounded job-queue capacity (full queue rejects submits)",
                &options.queue_capacity);
  parser.AddDouble("ttl", "seconds to retain terminal job results",
                   &options.ttl);
  parser.AddDouble("row-scale",
                   "row scale for benchmark-suite datasets generated on "
                   "demand",
                   &options.row_scale);
  parser.AddString("optimizer",
                   "path to a serialized DfsOptimizer for \"auto\" jobs",
                   &options.optimizer);
  parser.AddBool("expose", "bind all interfaces instead of loopback only",
                 &options.expose);
  parser.AddBool("help", "print usage", &options.help);
  if (Status status = parser.Parse(argc, argv); !status.ok()) {
    std::fprintf(stderr, "%s\n\n%s", status.ToString().c_str(),
                 parser.Help().c_str());
    return 1;
  }
  if (options.help) {
    std::fputs(parser.Help().c_str(), stdout);
    return 0;
  }

  serve::ServerOptions server_options;
  server_options.num_workers = options.workers;
  server_options.queue_capacity =
      static_cast<size_t>(std::max(1, options.queue_capacity));
  server_options.result_ttl_seconds = options.ttl;
  server_options.dataset_row_scale = options.row_scale;
  serve::DfsServer server(server_options);

  if (!options.optimizer.empty()) {
    auto optimizer = core::DfsOptimizer::LoadFromFile(options.optimizer);
    if (!optimizer.ok()) {
      std::fprintf(stderr, "optimizer: %s\n",
                   optimizer.status().ToString().c_str());
      return 1;
    }
    server.SetOptimizer(std::move(optimizer).value());
    std::printf("meta-optimizer loaded from %s\n", options.optimizer.c_str());
  }

  serve::TcpListener listener;
  if (Status status =
          listener.Listen(options.port, /*loopback_only=*/!options.expose);
      !status.ok()) {
    std::fprintf(stderr, "listen: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("dfs_serverd listening on port %d (%d workers, queue %zu)\n",
              listener.port(), server_options.num_workers,
              server_options.queue_capacity);
  std::fflush(stdout);

  std::atomic<bool> shutting_down{false};
  Connections connections;
  std::vector<std::thread> handlers;
  while (true) {
    auto client = listener.Accept();
    if (!client.ok()) break;  // listener closed (shutdown) or fatal error
    auto channel = std::make_shared<serve::LineChannel>(*client);
    connections.Add(channel);
    handlers.emplace_back([&server, &listener, &shutting_down, &connections,
                           channel] {
      if (serve::ServeConnection(server, *channel) &&
          !shutting_down.exchange(true)) {
        listener.Close();            // unblock the accept loop
        connections.ShutdownAll();   // unblock other connections
      }
    });
  }
  for (auto& handler : handlers) handler.join();
  server.Shutdown(/*cancel_pending=*/true);

  const serve::ServerStats stats = server.Stats();
  std::printf(
      "dfs_serverd exiting: accepted=%llu completed=%llu failed=%llu "
      "cancelled=%llu timed_out=%llu rejected=%llu\n",
      static_cast<unsigned long long>(stats.accepted),
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.failed),
      static_cast<unsigned long long>(stats.cancelled),
      static_cast<unsigned long long>(stats.timed_out),
      static_cast<unsigned long long>(stats.rejected));
  return 0;
}

}  // namespace
}  // namespace dfs

int main(int argc, char** argv) { return dfs::RealMain(argc, argv); }
