// dfs_loadgen — open/closed-loop load generator for the serve front-end.
//
//   dfs_loadgen --workload ping --mode open --connections 1024
//               --rate 2000 --requests 20000 --json out.json
//
// Boots an in-process DfsServer behind either the epoll event-loop
// front-end (--frontend epoll, the production path) or a
// thread-per-connection baseline (--frontend threads), then drives it over
// real TCP with a registered named workload. Two load modes:
//
//   * open   — requests fire on a fixed arrival schedule (--rate per
//     second, spread round-robin over --connections keep-alive channels).
//     Latency is measured from the *intended* arrival time, so queueing
//     delay that a slow server inflicts on the schedule is charged to the
//     server (no coordinated omission: a closed loop would politely stop
//     sending while the server struggles and hide the collapse).
//   * closed — every channel sends back-to-back round trips; latency is
//     the plain round-trip time. Good for peak-throughput numbers, blind
//     to queueing collapse.
//
// Output: completed/shed/error counts, throughput, and p50/p95/p99/p999
// latency. --json writes a google-benchmark-compatible report (rows named
// LoadGen/<frontend>/<workload>/<mode>/c<N>/r<rate>/<stat>) so
// scripts/bench_diff.py can gate front-end latency against the committed
// BENCH snapshot. Shed responses count as completions (a fast queue_full
// line IS the backpressure contract working); served vs shed counts are
// reported separately.

#include <csignal>
#include <cstdio>
#include <cstring>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "serve/event_loop.h"
#include "serve/frontend.h"
#include "serve/line_protocol.h"
#include "serve/server.h"
#include "serve/tcp.h"
#include "util/flags.h"
#include "util/mutex.h"
#include "util/statusor.h"
#include "util/stopwatch.h"
#include "util/thread_annotations.h"

namespace dfs {
namespace {

constexpr char kDataset[] = "loadgen-tiny";

data::Dataset TinyDataset() {
  data::SyntheticSpec spec;
  spec.name = kDataset;
  spec.sensitive_attribute = "Group";
  spec.rows = 120;
  spec.informative_numeric = 3;
  spec.redundant_numeric = 1;
  spec.noise_numeric = 2;
  spec.proxy_features = 1;
  spec.categorical_attributes = 0;
  auto dataset = data::GenerateDataset(spec, /*seed=*/11);
  DFS_CHECK(dataset.ok());
  return std::move(dataset).value();
}

/// A named workload: one request line per sequence number.
struct Workload {
  const char* name;
  const char* description;
  std::string (*line)(uint64_t seq);
};

std::string PingLine(uint64_t) {
  serve::JsonObject object;
  object["op"] = serve::JsonValue::String("ping");
  return serve::WriteJsonLine(object);
}

std::string StatsLine(uint64_t) {
  serve::JsonObject object;
  object["op"] = serve::JsonValue::String("stats");
  return serve::WriteJsonLine(object);
}

/// One-evaluation submit (cheapest strategy, always-satisfiable
/// constraint) so the measurement is front-end + queue/dispatch overhead,
/// not model training. Past saturation these are exactly the requests the
/// admission watermark sheds.
std::string SubmitLine(uint64_t seq) {
  serve::JobRequest request;
  request.dataset = kDataset;
  request.strategy = "Original Feature Set";
  constraints::ConstraintSet set;
  set.min_f1 = 0.0;
  set.max_search_seconds = 10.0;
  request.constraint_set = set;
  request.seed = seq + 1;
  return serve::FormatSubmitLine(request);
}

constexpr Workload kWorkloads[] = {
    {"ping", "pure front-end round trip ({\"op\":\"ping\"})", PingLine},
    {"stats", "service counters (takes server-side stats locks)",
     StatsLine},
    {"submit",
     "one-evaluation job submit (full dispatch + queue path; sheds past "
     "saturation)",
     SubmitLine},
};

const Workload* FindWorkload(const std::string& name) {
  for (const Workload& workload : kWorkloads) {
    if (name == workload.name) return &workload;
  }
  return nullptr;
}

/// Thread-per-connection baseline front-end (the architecture dfs_serverd
/// had before the event loop) so one binary measures both and the
/// regression criterion "p99 no worse than the baseline" is testable.
class ThreadedFrontEnd {
 public:
  explicit ThreadedFrontEnd(serve::DfsServer& server) : server_(server) {}

  ~ThreadedFrontEnd() { Stop(); }

  Status Start() {
    DFS_RETURN_IF_ERROR(listener_.Listen(/*port=*/0,
                                         /*loopback_only=*/true));
    acceptor_ = std::thread([this] {
      while (true) {
        auto client = listener_.Accept();
        if (!client.ok()) break;
        auto channel = std::make_shared<serve::LineChannel>(*client);
        util::MutexLock lock(mu_);
        handlers_.emplace_back([this, channel] {
          serve::ServeConnection(server_, *channel);
        });
      }
    });
    return OkStatus();
  }

  int port() const { return listener_.port(); }

  /// Callers close their client channels first, so every handler sees EOF
  /// and returns; this only has to unblock the acceptor and join.
  void Stop() {
    listener_.InterruptAccept();
    if (acceptor_.joinable()) acceptor_.join();
    std::vector<std::thread> handlers;
    {
      util::MutexLock lock(mu_);
      handlers.swap(handlers_);
    }
    for (std::thread& handler : handlers) handler.join();
    listener_.Close();
  }

 private:
  serve::DfsServer& server_;
  serve::TcpListener listener_;
  std::thread acceptor_;
  util::Mutex mu_;
  std::vector<std::thread> handlers_ DFS_GUARDED_BY(mu_);
};

struct LoadOptions {
  std::string frontend = "epoll";  // epoll | threads
  std::string mode = "open";       // open | closed
  std::string workload = "ping";
  int connections = 64;
  double rate = 1000.0;  // aggregate target arrival rate (open mode)
  int requests = 5000;   // total requests across all channels
  int workers = 2;
  int queue_capacity = 64;
  int io_threads = 2;
  int shed_watermark = 0;
  int max_connections = 4096;
  std::string json;  // google-benchmark JSON output path
  bool list_workloads = false;
  bool help = false;
};

/// Per-channel results, merged after the run.
struct ChannelResult {
  std::vector<double> latencies;  // seconds, completed responses only
  uint64_t completed = 0;
  uint64_t shed = 0;    // completed with a queue_full error line
  uint64_t errors = 0;  // transport failures (dead channel, bad line)
  uint64_t unsent = 0;  // schedule slots abandoned after a dead channel
};

bool IsShedLine(const std::string& line) {
  return line.find("\"error\":\"queue_full\"") != std::string::npos;
}

/// One channel's schedule: sequence numbers `index, index+C, index+2C...`
/// below `total`. In open mode each request waits for its intended
/// arrival time (base + seq/rate) and latency runs from that intended
/// time; in closed mode requests are back-to-back round trips.
void RunChannel(const LoadOptions& options, const Workload& workload,
                int port, int index, const Stopwatch& base,
                ChannelResult& result) {
  auto fd = serve::TcpConnect("127.0.0.1", port);
  if (!fd.ok()) {
    result.errors += 1;
    return;
  }
  serve::LineChannel channel(*fd);
  const bool open_loop = options.mode == "open";
  const uint64_t total = static_cast<uint64_t>(options.requests);
  const uint64_t stride = static_cast<uint64_t>(options.connections);
  for (uint64_t seq = static_cast<uint64_t>(index); seq < total;
       seq += stride) {
    double intended = base.ElapsedSeconds();
    if (open_loop) {
      intended = static_cast<double>(seq) / options.rate;
      const double ahead = intended - base.ElapsedSeconds();
      if (ahead > 0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(ahead));
      }
    }
    if (Status status = channel.WriteLine(workload.line(seq));
        !status.ok()) {
      result.errors += 1;
      result.unsent += (total - seq + stride - 1) / stride - 1;
      return;
    }
    auto response = channel.ReadLine();
    if (!response.ok()) {
      result.errors += 1;
      result.unsent += (total - seq + stride - 1) / stride - 1;
      return;
    }
    result.latencies.push_back(base.ElapsedSeconds() - intended);
    result.completed += 1;
    if (IsShedLine(*response)) result.shed += 1;
  }
}

double Percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t n = sorted.size();
  size_t index = static_cast<size_t>(q * static_cast<double>(n));
  if (index >= n) index = n - 1;
  return sorted[index];
}

struct Summary {
  uint64_t completed = 0;
  uint64_t shed = 0;
  uint64_t errors = 0;
  uint64_t unsent = 0;
  double wall_seconds = 0;
  double throughput = 0;  // completed responses per second
  double mean = 0, p50 = 0, p95 = 0, p99 = 0, p999 = 0;  // seconds
};

Summary Summarize(std::vector<ChannelResult>& results,
                  double wall_seconds) {
  Summary summary;
  summary.wall_seconds = wall_seconds;
  std::vector<double> latencies;
  for (ChannelResult& result : results) {
    summary.completed += result.completed;
    summary.shed += result.shed;
    summary.errors += result.errors;
    summary.unsent += result.unsent;
    latencies.insert(latencies.end(), result.latencies.begin(),
                     result.latencies.end());
  }
  std::sort(latencies.begin(), latencies.end());
  double sum = 0;
  for (const double latency : latencies) sum += latency;
  if (!latencies.empty()) {
    summary.mean = sum / static_cast<double>(latencies.size());
  }
  summary.p50 = Percentile(latencies, 0.50);
  summary.p95 = Percentile(latencies, 0.95);
  summary.p99 = Percentile(latencies, 0.99);
  summary.p999 = Percentile(latencies, 0.999);
  if (wall_seconds > 0) {
    summary.throughput =
        static_cast<double>(summary.completed) / wall_seconds;
  }
  return summary;
}

/// google-benchmark-compatible JSON (the subset bench_diff.py reads:
/// name/run_type/real_time/time_unit), one row per latency stat plus a
/// gateable ns_per_op throughput row. Counts ride in the label field so
/// run-to-run shed jitter never trips the latency gate.
Status WriteJson(const LoadOptions& options, const Summary& summary,
                 const std::string& path) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return InternalError("cannot write " + path);
  const std::string prefix =
      "LoadGen/" + options.frontend + "/" + options.workload + "/" +
      options.mode + "/c" + std::to_string(options.connections) + "/r" +
      std::to_string(options.mode == "open"
                         ? static_cast<int>(options.rate)
                         : 0);
  const std::pair<const char*, double> rows[] = {
      {"p50", summary.p50 * 1e9},
      {"p95", summary.p95 * 1e9},
      {"p99", summary.p99 * 1e9},
      {"p999", summary.p999 * 1e9},
      {"mean", summary.mean * 1e9},
      {"ns_per_op",
       summary.completed > 0
           ? summary.wall_seconds * 1e9 /
                 static_cast<double>(summary.completed)
           : 0.0},
  };
  std::fprintf(out, "{\n  \"context\": {\n");
#ifdef NDEBUG
  std::fprintf(out, "    \"dfs_build_type\": \"release\"\n");
#else
  std::fprintf(out, "    \"dfs_build_type\": \"debug\"\n");
#endif
  std::fprintf(out, "  },\n  \"benchmarks\": [\n");
  const size_t count = sizeof(rows) / sizeof(rows[0]);
  for (size_t i = 0; i < count; ++i) {
    std::fprintf(out,
                 "    {\n"
                 "      \"name\": \"%s/%s\",\n"
                 "      \"run_name\": \"%s/%s\",\n"
                 "      \"run_type\": \"iteration\",\n"
                 "      \"iterations\": 1,\n"
                 "      \"real_time\": %.1f,\n"
                 "      \"cpu_time\": 0.0,\n"
                 "      \"time_unit\": \"ns\",\n"
                 "      \"label\": \"completed=%llu shed=%llu errors=%llu "
                 "unsent=%llu qps=%.1f\"\n"
                 "    }%s\n",
                 prefix.c_str(), rows[i].first, prefix.c_str(),
                 rows[i].first, rows[i].second,
                 static_cast<unsigned long long>(summary.completed),
                 static_cast<unsigned long long>(summary.shed),
                 static_cast<unsigned long long>(summary.errors),
                 static_cast<unsigned long long>(summary.unsent),
                 summary.throughput, i + 1 < count ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  return OkStatus();
}

int RealMain(int argc, char** argv) {
  std::signal(SIGPIPE, SIG_IGN);

  LoadOptions options;
  FlagParser parser(
      "dfs_loadgen — open/closed-loop load generator for the serve "
      "front-end (in-process server over real TCP)");
  parser.AddString("frontend",
                   "serve front-end under test: epoll (event loop) or "
                   "threads (thread-per-connection baseline)",
                   &options.frontend);
  parser.AddString("mode",
                   "open (fixed arrival schedule, latency from intended "
                   "arrival) or closed (back-to-back round trips)",
                   &options.mode);
  parser.AddString("workload", "registered workload (see --list-workloads)",
                   &options.workload);
  parser.AddInt("connections", "concurrent keep-alive channels",
                &options.connections);
  parser.AddDouble("rate",
                   "aggregate target arrival rate, requests/second "
                   "(open mode)",
                   &options.rate);
  parser.AddInt("requests", "total requests across all channels",
                &options.requests);
  parser.AddInt("workers", "server worker threads", &options.workers);
  parser.AddInt("queue-capacity", "server job-queue capacity",
                &options.queue_capacity);
  parser.AddInt("io-threads", "event-loop I/O threads (epoll front-end)",
                &options.io_threads);
  parser.AddInt("shed-watermark",
                "admission-control watermark passed to the event loop "
                "(0 = request shedding off)",
                &options.shed_watermark);
  parser.AddInt("max-connections",
                "accept-shed limit passed to the event loop",
                &options.max_connections);
  parser.AddString("json",
                   "write a google-benchmark-compatible JSON report here",
                   &options.json);
  parser.AddBool("list-workloads", "list registered workloads and exit",
                 &options.list_workloads);
  parser.AddBool("help", "print usage", &options.help);
  if (Status status = parser.Parse(argc, argv); !status.ok()) {
    std::fprintf(stderr, "%s\n\n%s", status.ToString().c_str(),
                 parser.Help().c_str());
    return 1;
  }
  if (options.help) {
    std::fputs(parser.Help().c_str(), stdout);
    return 0;
  }
  if (options.list_workloads) {
    for (const Workload& workload : kWorkloads) {
      std::printf("%-8s %s\n", workload.name, workload.description);
    }
    return 0;
  }
  const Workload* workload = FindWorkload(options.workload);
  if (workload == nullptr) {
    std::fprintf(stderr, "unknown workload \"%s\" (see --list-workloads)\n",
                 options.workload.c_str());
    return 1;
  }
  if (options.frontend != "epoll" && options.frontend != "threads") {
    std::fprintf(stderr, "--frontend must be epoll or threads\n");
    return 1;
  }
  if (options.mode != "open" && options.mode != "closed") {
    std::fprintf(stderr, "--mode must be open or closed\n");
    return 1;
  }
  if (options.connections < 1 || options.requests < 1 ||
      options.rate <= 0) {
    std::fprintf(stderr,
                 "--connections/--requests must be >= 1, --rate > 0\n");
    return 1;
  }

  serve::ServerOptions server_options;
  server_options.num_workers = std::max(1, options.workers);
  server_options.queue_capacity =
      static_cast<size_t>(std::max(1, options.queue_capacity));
  serve::DfsServer server(server_options);
  server.RegisterDataset(kDataset, TinyDataset());

  int port = 0;
  std::unique_ptr<serve::EventLoopFrontEnd> epoll_frontend;
  std::unique_ptr<ThreadedFrontEnd> threaded_frontend;
  if (options.frontend == "epoll") {
    serve::EventLoopOptions frontend_options;
    frontend_options.io_threads = options.io_threads;
    frontend_options.max_connections =
        static_cast<size_t>(std::max(1, options.max_connections));
    frontend_options.shed_watermark =
        static_cast<size_t>(std::max(0, options.shed_watermark));
    epoll_frontend = std::make_unique<serve::EventLoopFrontEnd>(
        server, frontend_options);
    if (Status status = epoll_frontend->Start(); !status.ok()) {
      std::fprintf(stderr, "frontend: %s\n", status.ToString().c_str());
      return 1;
    }
    port = epoll_frontend->port();
  } else {
    threaded_frontend = std::make_unique<ThreadedFrontEnd>(server);
    if (Status status = threaded_frontend->Start(); !status.ok()) {
      std::fprintf(stderr, "frontend: %s\n", status.ToString().c_str());
      return 1;
    }
    port = threaded_frontend->port();
  }

  std::printf(
      "dfs_loadgen: %s front-end on port %d · workload=%s mode=%s "
      "connections=%d requests=%d%s\n",
      options.frontend.c_str(), port, workload->name,
      options.mode.c_str(), options.connections, options.requests,
      options.mode == "open"
          ? (" rate=" + std::to_string(static_cast<int>(options.rate)))
                .c_str()
          : "");
  std::fflush(stdout);

  std::vector<ChannelResult> results(
      static_cast<size_t>(options.connections));
  {
    // Connect-then-fire: all channels are open before the schedule
    // starts, so `--connections` is the true concurrent-channel count
    // for the whole run.
    std::vector<std::thread> clients;
    clients.reserve(results.size());
    std::atomic<int> ready{0};
    std::atomic<bool> go{false};
    Stopwatch base;
    for (int i = 0; i < options.connections; ++i) {
      clients.emplace_back([&, i] {
        ready.fetch_add(1);
        while (!go.load(std::memory_order_acquire)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        RunChannel(options, *workload, port, i, base,
                   results[static_cast<size_t>(i)]);
      });
    }
    while (ready.load() < options.connections) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    base.Restart();
    go.store(true, std::memory_order_release);
    for (std::thread& client : clients) client.join();
    const double wall = base.ElapsedSeconds();
    Summary summary = Summarize(results, wall);

    if (epoll_frontend != nullptr) {
      epoll_frontend->RequestStop();
      epoll_frontend->Wait();
    }
    if (threaded_frontend != nullptr) threaded_frontend->Stop();
    server.Shutdown(/*cancel_pending=*/true);

    std::printf(
        "completed=%llu shed=%llu errors=%llu unsent=%llu wall=%.2fs "
        "throughput=%.1f req/s\n",
        static_cast<unsigned long long>(summary.completed),
        static_cast<unsigned long long>(summary.shed),
        static_cast<unsigned long long>(summary.errors),
        static_cast<unsigned long long>(summary.unsent),
        summary.wall_seconds, summary.throughput);
    std::printf(
        "latency  mean=%.3fms p50=%.3fms p95=%.3fms p99=%.3fms "
        "p999=%.3fms\n",
        summary.mean * 1e3, summary.p50 * 1e3, summary.p95 * 1e3,
        summary.p99 * 1e3, summary.p999 * 1e3);
    if (!options.json.empty()) {
      if (Status status = WriteJson(options, summary, options.json);
          !status.ok()) {
        std::fprintf(stderr, "json: %s\n", status.ToString().c_str());
        return 1;
      }
      std::printf("json report written to %s\n", options.json.c_str());
    }
    if (summary.completed == 0) {
      std::fprintf(stderr, "no requests completed\n");
      return 1;
    }
    // Transport failures (dead channels, unexpected EOF) are a soak
    // failure; request sheds are not — a shed line is the backpressure
    // contract working.
    if (summary.errors > 0) return 2;
  }
  return 0;
}

}  // namespace
}  // namespace dfs

int main(int argc, char** argv) { return dfs::RealMain(argc, argv); }
