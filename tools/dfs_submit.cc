// dfs_submit — client for the dfs_serverd job service.
//
//   dfs_submit --dataset COMPAS --model LR --strategy auto \
//              --min-f1 0.7 --min-eo 0.9 --budget 2 --wait
//   dfs_submit --status 7        dfs_submit --result 7
//   dfs_submit --cancel 7        dfs_submit --stats
//   dfs_submit --metrics         dfs_submit --ping
//   dfs_submit --router          dfs_submit --shutdown
//   dfs_submit --cache
//   dfs_submit --ping --connections 4 --repeat 8 --pipeline
//
// --explain-route pretty-prints the router's decision (policy, probability
// map, portfolio members) from an "auto" submit response.
//
// Speaks the newline-delimited JSON line protocol (one request, one
// response per line). Responses are printed verbatim; --wait polls a
// submitted job until it reaches a terminal state and then fetches its
// result. A "queue_full" error means backpressure: retry later.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>

#include "serve/line_protocol.h"
#include "serve/tcp.h"
#include "util/flags.h"

namespace dfs {
namespace {

struct ClientOptions {
  std::string host = "127.0.0.1";
  int port = 7070;

  // Submit fields.
  std::string dataset;
  std::string model = "LR";
  std::string strategy = "auto";
  double min_f1 = 0.7;
  double min_eo = -1.0;
  double min_safety = -1.0;
  double max_features = -1.0;
  double epsilon = -1.0;
  double budget = 60.0;
  bool hpo = false;
  bool utility = false;
  int priority = 0;
  int seed = 42;
  bool wait = false;
  bool explain_route = false;

  // Multi-channel / pipelining (exercises the event-loop front-end's
  // multiplexed path; see docs/PROTOCOL.md "Keep-alive and pipelining").
  int connections = 1;
  int repeat = 1;
  bool pipeline = false;

  // Other ops.
  int status_id = 0;
  int result_id = 0;
  int cancel_id = 0;
  bool stats = false;
  bool metrics = false;
  bool router = false;
  bool cache = false;
  bool ping = false;
  bool shutdown = false;
  bool help = false;
};

void RegisterFlags(FlagParser& parser, ClientOptions& options) {
  parser.AddString("host", "server host", &options.host);
  parser.AddInt("port", "server port", &options.port);
  parser.AddString("dataset", "dataset name (submit)", &options.dataset);
  parser.AddString("model", "model: LR, NB, DT, SVM", &options.model);
  parser.AddString("strategy", "strategy name or \"auto\"",
                   &options.strategy);
  parser.AddDouble("min-f1", "minimum F1 score", &options.min_f1);
  parser.AddDouble("min-eo", "minimum equal opportunity (omit to disable)",
                   &options.min_eo);
  parser.AddDouble("min-safety",
                   "minimum adversarial safety (omit to disable)",
                   &options.min_safety);
  parser.AddDouble("max-features",
                   "maximum feature fraction in (0, 1] (omit to disable)",
                   &options.max_features);
  parser.AddDouble("epsilon",
                   "differential-privacy epsilon (omit to disable)",
                   &options.epsilon);
  parser.AddDouble("budget", "maximum search seconds", &options.budget);
  parser.AddBool("hpo", "grid-search hyperparameters per evaluation",
                 &options.hpo);
  parser.AddBool("utility", "maximize F1 subject to the constraints",
                 &options.utility);
  parser.AddInt("priority", "queue priority (higher runs first)",
                &options.priority);
  parser.AddInt("seed", "random seed", &options.seed);
  parser.AddBool("wait", "poll the submitted job until terminal",
                 &options.wait);
  parser.AddBool("explain-route",
                 "after an \"auto\" submit, pretty-print the router's "
                 "decision (policy, probabilities, portfolio members)",
                 &options.explain_route);
  parser.AddInt("connections",
                "open this many keep-alive channels and send the request "
                "on each (disables --wait/--explain-route)",
                &options.connections);
  parser.AddInt("repeat", "send the request this many times per channel",
                &options.repeat);
  parser.AddBool("pipeline",
                 "write every --repeat request before reading any "
                 "response (responses still arrive in request order)",
                 &options.pipeline);
  parser.AddInt("status", "fetch the status of a job id", &options.status_id);
  parser.AddInt("result", "fetch the result of a job id", &options.result_id);
  parser.AddInt("cancel", "cancel a job id", &options.cancel_id);
  parser.AddBool("stats", "fetch service counters", &options.stats);
  parser.AddBool("metrics",
                 "fetch the flattened dfs::obs metrics snapshot",
                 &options.metrics);
  parser.AddBool("router",
                 "fetch the strategy router's policy, learning progress and "
                 "per-strategy route counts",
                 &options.router);
  parser.AddBool("cache",
                 "fetch the shared eval-cache counters (hits, misses, "
                 "filter negatives, spills/restores, shard occupancy)",
                 &options.cache);
  parser.AddBool("ping", "health-check the service", &options.ping);
  parser.AddBool("shutdown", "ask the daemon to shut down",
                 &options.shutdown);
  parser.AddBool("help", "print usage", &options.help);
}

StatusOr<std::string> RoundTrip(serve::LineChannel& channel,
                                const std::string& request) {
  DFS_RETURN_IF_ERROR(channel.WriteLine(request));
  return channel.ReadLine();
}

std::string IdRequest(const char* op, int id) {
  serve::JsonObject object;
  object["op"] = serve::JsonValue::String(op);
  object["id"] = serve::JsonValue::Number(id);
  return serve::WriteJsonLine(object);
}

std::string OpRequest(const char* op) {
  serve::JsonObject object;
  object["op"] = serve::JsonValue::String(op);
  return serve::WriteJsonLine(object);
}

/// Pretty-prints the route_* fields of an "auto" submit response (see
/// docs/PROTOCOL.md "submit"): the policy that decided, the per-strategy
/// probability map, and the portfolio members when the policy raced.
void ExplainRoute(const serve::JsonObject& object) {
  auto policy = serve::GetString(object, "route_policy");
  if (!policy.ok()) {
    std::printf("route: (none — explicit strategy or unrouted job)\n");
    return;
  }
  auto strategy = serve::GetString(object, "strategy");
  std::printf("route: policy=%s strategy=%s\n", policy->c_str(),
              strategy.ok() ? strategy->c_str() : "?");
  const bool explored =
      serve::GetBool(object, "route_explored").value_or(false);
  const bool portfolio =
      serve::GetBool(object, "route_portfolio").value_or(false);
  if (explored) std::printf("route: explored (epsilon draw)\n");
  auto members = serve::GetString(object, "route_members");
  if (portfolio && members.ok()) {
    std::printf("route: portfolio over [%s]\n", members->c_str());
  }
  auto probs = serve::GetString(object, "route_probs");
  if (probs.ok() && !probs->empty()) {
    std::printf("route: probabilities:\n");
    std::istringstream in(*probs);
    std::string entry;
    while (in >> entry) {
      const size_t colon = entry.rfind(':');
      if (colon == std::string::npos) continue;
      std::printf("  %-24s %s\n", entry.substr(0, colon).c_str(),
                  entry.substr(colon + 1).c_str());
    }
  } else {
    std::printf("route: no probabilities (optimizer not trained yet)\n");
  }
}

/// Polls `id` until terminal, then prints its result line. Returns the
/// process exit code (0 = job DONE and successful).
int WaitAndFetch(serve::LineChannel& channel, double id) {
  while (true) {
    auto response =
        RoundTrip(channel, IdRequest("status", static_cast<int>(id)));
    if (!response.ok()) {
      std::fprintf(stderr, "poll: %s\n",
                   response.status().ToString().c_str());
      return 1;
    }
    auto object = serve::ParseJsonLine(*response);
    if (!object.ok()) {
      std::fprintf(stderr, "bad response: %s\n", response->c_str());
      return 1;
    }
    auto state = serve::GetString(*object, "state");
    if (!state.ok()) {  // error response, e.g. evicted
      std::printf("%s\n", response->c_str());
      return 1;
    }
    if (*state != "QUEUED" && *state != "RUNNING") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  auto result =
      RoundTrip(channel, IdRequest("result", static_cast<int>(id)));
  if (!result.ok()) {
    std::fprintf(stderr, "result: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", result->c_str());
  auto object = serve::ParseJsonLine(*result);
  if (object.ok()) {
    auto success = serve::GetBool(*object, "success");
    if (success.ok()) return *success ? 0 : 2;
  }
  return 1;
}

/// Sends `request` --repeat times over each of --connections keep-alive
/// channels. With --pipeline, all repeats on a channel are written before
/// any response is read (the front-end answers pipelined lines in request
/// order); without it, each repeat is a serial round-trip on the same
/// channel. Every response line is printed; exit 0 iff all carried
/// "ok":true.
int MultiChannel(const ClientOptions& options, const std::string& request) {
  const int repeats = std::max(1, options.repeat);
  bool all_ok = true;
  for (int c = 0; c < std::max(1, options.connections); ++c) {
    auto fd = serve::TcpConnect(options.host, options.port);
    if (!fd.ok()) {
      std::fprintf(stderr, "connect: %s\n", fd.status().ToString().c_str());
      return 1;
    }
    serve::LineChannel channel(*fd);
    if (options.pipeline) {
      for (int r = 0; r < repeats; ++r) {
        if (Status status = channel.WriteLine(request); !status.ok()) {
          std::fprintf(stderr, "request: %s\n", status.ToString().c_str());
          return 1;
        }
      }
    }
    for (int r = 0; r < repeats; ++r) {
      auto response = options.pipeline ? channel.ReadLine()
                                       : RoundTrip(channel, request);
      if (!response.ok()) {
        std::fprintf(stderr, "request: %s\n",
                     response.status().ToString().c_str());
        return 1;
      }
      std::printf("%s\n", response->c_str());
      auto object = serve::ParseJsonLine(*response);
      if (!object.ok() || !serve::GetBool(*object, "ok").value_or(false)) {
        all_ok = false;
      }
    }
  }
  return all_ok ? 0 : 1;
}

int RealMain(int argc, char** argv) {
  ClientOptions options;
  FlagParser parser("dfs_submit — client for the dfs_serverd job service");
  RegisterFlags(parser, options);
  if (Status status = parser.Parse(argc, argv); !status.ok()) {
    std::fprintf(stderr, "%s\n\n%s", status.ToString().c_str(),
                 parser.Help().c_str());
    return 1;
  }
  if (options.help) {
    std::fputs(parser.Help().c_str(), stdout);
    return 0;
  }

  std::string request;
  if (options.status_id > 0) {
    request = IdRequest("status", options.status_id);
  } else if (options.result_id > 0) {
    request = IdRequest("result", options.result_id);
  } else if (options.cancel_id > 0) {
    request = IdRequest("cancel", options.cancel_id);
  } else if (options.stats) {
    request = OpRequest("stats");
  } else if (options.metrics) {
    request = OpRequest("metrics");
  } else if (options.router) {
    request = OpRequest("router");
  } else if (options.cache) {
    request = OpRequest("cache");
  } else if (options.ping) {
    request = OpRequest("ping");
  } else if (options.shutdown) {
    request = OpRequest("shutdown");
  } else if (!options.dataset.empty()) {
    serve::JobRequest job;
    job.dataset = options.dataset;
    auto model = serve::ParseModelKind(options.model);
    if (!model.ok()) {
      std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
      return 1;
    }
    job.model = *model;
    job.strategy = options.strategy;
    constraints::ConstraintSetBuilder builder;
    builder.MinF1(options.min_f1).MaxSearchSeconds(options.budget);
    if (options.min_eo >= 0) builder.MinEqualOpportunity(options.min_eo);
    if (options.min_safety >= 0) builder.MinSafety(options.min_safety);
    if (options.max_features > 0) {
      builder.MaxFeatureFraction(options.max_features);
    }
    if (options.epsilon > 0) builder.PrivacyEpsilon(options.epsilon);
    auto constraint_set = builder.Build();
    if (!constraint_set.ok()) {
      std::fprintf(stderr, "constraints: %s\n",
                   constraint_set.status().ToString().c_str());
      return 1;
    }
    job.constraint_set = *constraint_set;
    job.use_hpo = options.hpo;
    job.maximize_utility = options.utility;
    job.priority = options.priority;
    job.seed = static_cast<uint64_t>(options.seed);
    request = serve::FormatSubmitLine(job);
  } else {
    std::fprintf(stderr,
                 "nothing to do: pass --dataset (submit) or one of "
                 "--status/--result/--cancel/--stats/--metrics/--router/--cache/"
                 "--ping/"
                 "--shutdown\n\n%s",
                 parser.Help().c_str());
    return 1;
  }

  if (options.connections > 1 || options.repeat > 1 || options.pipeline) {
    return MultiChannel(options, request);
  }

  auto fd = serve::TcpConnect(options.host, options.port);
  if (!fd.ok()) {
    std::fprintf(stderr, "connect: %s\n", fd.status().ToString().c_str());
    return 1;
  }
  serve::LineChannel channel(*fd);
  auto response = RoundTrip(channel, request);
  if (!response.ok()) {
    std::fprintf(stderr, "request: %s\n",
                 response.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", response->c_str());

  auto object = serve::ParseJsonLine(*response);
  if (!object.ok()) return 1;
  const bool accepted = serve::GetBool(*object, "ok").value_or(false);
  if (options.explain_route && !options.dataset.empty() && accepted) {
    ExplainRoute(*object);
  }
  if (options.wait && !options.dataset.empty()) {
    if (!accepted) return 1;
    auto id = serve::GetNumber(*object, "id");
    if (!id.ok()) return 1;
    return WaitAndFetch(channel, *id);
  }
  // An error response (e.g. queue_full backpressure) is a non-zero exit even
  // without --wait, so shell callers can retry on it.
  return accepted ? 0 : 1;
}

}  // namespace
}  // namespace dfs

int main(int argc, char** argv) { return dfs::RealMain(argc, argv); }
