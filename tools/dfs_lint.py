#!/usr/bin/env python3
"""dfs_lint — project-contract linter (scripts/check.sh --lint).

Enforces the repo-specific rules the compiler cannot (DESIGN.md §2f).
Each rule guards a documented contract:

  banned-symbol     §2d byte-identical-masks determinism: no ambient
                    randomness (std::rand, std::random_device) and no
                    wall-clock reads (time(), std::chrono::system_clock)
                    outside the sanctioned utilities util/rng.cc and
                    util/stopwatch.h. Everything random flows from a
                    seeded util::Rng; everything timed from Stopwatch's
                    steady clock. Also bans `volatile` (it is not a
                    synchronization mechanism — use util::Mutex or
                    std::atomic) and raw `thread_local` (per-thread
                    state is invisible to the §2f lock discipline and
                    the §2e scratch accounting; every use needs a
                    '// DFS_THREAD_LOCAL_OK: <reason>' on the same or
                    preceding line). src/linalg is exempt from both —
                    kernel scaffolding may legitimately need them.
  naked-mutex       All locking goes through the annotated wrappers in
                    util/mutex.h so the Clang thread-safety analysis
                    (DFS_ANALYZE=ON) sees every capability. std::mutex,
                    the std lock RAII types, std::condition_variable and
                    std::call_once/once_flag are banned outside that
                    header, as is including <mutex>/<condition_variable>.
  header-guard      Every header carries its canonical include guard
                    (DFS_<PATH>_H_) or #pragma once.
  include-order     A .cc file includes its own header first (proves the
                    header is self-contained); within the rest of the
                    file, <system> includes precede "project" includes.
  dcheck-side-effect DFS_DCHECK compiles out under NDEBUG, so an argument
                    that mutates state (++/--/assignment/.insert-style
                    calls) would make Release behave differently from
                    Debug.
  metric-name       Every literal instrument name registered on a
                    MetricsRegistry must be documented in
                    docs/PROTOCOL.md (the wire contract of the serve
                    "metrics" verb) — the metrics namespace is public
                    API, same policy as the DFS_* env knobs in
                    check_docs.py.
  naked-exemption   DFS_NO_THREAD_SAFETY_ANALYSIS without a justification
                    comment on the same or preceding line: exemptions are
                    allowed, silent ones are not.
  linalg-span       Kernel-layer API hygiene (DESIGN.md §2i): linalg
                    headers must take std::span<const double> (or raw
                    pointer + length), never const std::vector<double>&.
                    A const-ref vector parameter forces callers holding a
                    span, a Matrix row, or a scratch slice to materialize
                    a copy on the evaluation hot path.

Usage:
  tools/dfs_lint.py                 # lint src/ and tools/ of this repo
  tools/dfs_lint.py --root DIR ...  # lint another tree (test fixtures)

Exit status: 0 when clean, 1 when any rule fires.
"""

import argparse
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Files allowed to hold what the rules ban, relative to the scanned root.
BANNED_SYMBOL_ALLOWLIST = {"util/rng.cc", "util/stopwatch.h"}
NAKED_MUTEX_ALLOWLIST = {"util/mutex.h", "util/thread_annotations.h"}

BANNED_SYMBOLS = [
    # (human name, regex). Word boundaries keep e.g. steady_clock and
    # Stopwatch's ElapsedSeconds out of the blast radius.
    ("std::rand/rand()",
     re.compile(r"(?<![\w:.])(?:std\s*::\s*)?s?rand\s*\(")),
    ("std::random_device", re.compile(r"\brandom_device\b")),
    ("std::chrono::system_clock", re.compile(r"\bsystem_clock\b")),
    ("time()/std::time()",
     re.compile(r"(?<![\w:.>])(?:std\s*::\s*)?time\s*\(")),
    ("clock()",
     re.compile(r"(?<![\w:.>])(?:std\s*::\s*)?clock\s*\(")),
]

VOLATILE_RE = re.compile(r"\bvolatile\b")
THREAD_LOCAL_RE = re.compile(r"\bthread_local\b")
# Marker with no justification text = itself a violation (same policy as
# naked-exemption).
THREAD_LOCAL_OK_RE = re.compile(r"//\s*DFS_THREAD_LOCAL_OK:\s*(\S.*)?$")

NAKED_MUTEX_RE = re.compile(
    r"std::(mutex|timed_mutex|recursive_mutex|shared_mutex|shared_lock"
    r"|lock_guard|unique_lock|scoped_lock|condition_variable"
    r"|condition_variable_any|call_once|once_flag)\b"
    r"|#\s*include\s*<(mutex|condition_variable|shared_mutex)>")

METRIC_CALL_RE = re.compile(
    r"\.(counter|gauge|histogram)\(\s*\"([^\"]+)\"")

DCHECK_RE = re.compile(r"\bDFS_DCHECK\s*\(")
# Mutations inside a DCHECK argument: ++ / -- / plain assignment (not a
# comparison) / well-known mutating member calls.
DCHECK_MUTATION_RE = re.compile(
    r"\+\+|--|(?<![=!<>+\-*/%&|^])=(?![=])"
    r"|\.(push_back|emplace|emplace_back|insert|erase|pop_back|clear"
    r"|reset|release|store|fetch_add|fetch_sub)\s*\(")

EXEMPTION_RE = re.compile(r"\bDFS_NO_THREAD_SAFETY_ANALYSIS\b")

# const-ref vector-of-scalar in a linalg header: should be std::span (or
# pointer + length). Return types and members are by value / owning, so
# the const-ref spelling only ever appears in parameter lists.
LINALG_SPAN_RE = re.compile(
    r"const\s+std::vector<\s*(?:double|float)\s*>\s*&")

LINE_COMMENT_RE = re.compile(r"//[^\n]*")
BLOCK_COMMENT_RE = re.compile(r"/\*.*?\*/", re.DOTALL)
STRING_RE = re.compile(r'"(?:[^"\\\n]|\\.)*"')
INCLUDE_RE = re.compile(r'^\s*#\s*include\s*([<"])([^>"]+)[>"]')


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments(text, keep_strings=False):
    """Blanks comments (and optionally string literals) while preserving
    line numbers, so rule regexes never fire on prose or examples."""
    def blank(match):
        return re.sub(r"[^\n]", " ", match.group(0))

    text = BLOCK_COMMENT_RE.sub(blank, text)
    if not keep_strings:
        text = STRING_RE.sub(blank, text)
    text = LINE_COMMENT_RE.sub(blank, text)
    return text


def iter_lines(text):
    for number, line in enumerate(text.splitlines(), start=1):
        yield number, line


def check_banned_symbols(rel, text, out):
    if rel in BANNED_SYMBOL_ALLOWLIST:
        return
    code = strip_comments(text)
    for number, line in iter_lines(code):
        for name, pattern in BANNED_SYMBOLS:
            if pattern.search(line):
                out.append(Violation(
                    rel, number, "banned-symbol",
                    f"{name} breaks the §2d determinism contract; use "
                    f"util::Rng (seeded) or util::Stopwatch (steady clock)"))


def check_storage_qualifiers(rel, text, out):
    """volatile and raw thread_local (see the banned-symbol docstring
    entry). src/linalg kernel scaffolding is exempt from both."""
    if rel.startswith("linalg/"):
        return
    justified = set()
    for number, line in enumerate(text.splitlines(), start=1):
        match = THREAD_LOCAL_OK_RE.search(line)
        if not match:
            continue
        if match.group(1):
            justified.add(number)
        else:
            out.append(Violation(
                rel, number, "banned-symbol",
                "DFS_THREAD_LOCAL_OK without a justification — "
                "exemptions are allowed, silent ones are not"))
    code = strip_comments(text)
    for number, line in iter_lines(code):
        if VOLATILE_RE.search(line):
            out.append(Violation(
                rel, number, "banned-symbol",
                "'volatile' is not a synchronization mechanism and has "
                "no place outside src/linalg; use util::Mutex or "
                "std::atomic (§2f)"))
        if THREAD_LOCAL_RE.search(line) and \
                number not in justified and (number - 1) not in justified:
            out.append(Violation(
                rel, number, "banned-symbol",
                "raw thread_local — per-thread state bypasses the §2f "
                "lock discipline and the §2e scratch accounting; justify "
                "with '// DFS_THREAD_LOCAL_OK: <reason>' on this or the "
                "preceding line"))


def check_naked_mutex(rel, text, out):
    if rel in NAKED_MUTEX_ALLOWLIST:
        return
    code = strip_comments(text)
    for number, line in iter_lines(code):
        match = NAKED_MUTEX_RE.search(line)
        if match:
            out.append(Violation(
                rel, number, "naked-mutex",
                f"'{match.group(0).strip()}' bypasses the annotated "
                f"util::Mutex/MutexLock/CondVar wrappers (util/mutex.h)"))


def guard_for(rel):
    """Canonical include-guard name: src/core/engine.h -> DFS_CORE_ENGINE_H_
    (rel is relative to the scanned root, which stands in for src/)."""
    stem = re.sub(r"\.h$", "", rel)
    return "DFS_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + "_H_"


def check_header_guard(rel, text, out):
    if not rel.endswith(".h"):
        return
    text = strip_comments(text)  # prose mentioning "#pragma once" is not a guard
    if re.search(r"#\s*pragma\s+once\b", text):
        return
    guard = guard_for(rel)
    if re.search(r"#\s*ifndef\s+" + re.escape(guard), text) and \
            re.search(r"#\s*define\s+" + re.escape(guard), text):
        return
    out.append(Violation(
        rel, 1, "header-guard",
        f"missing '#pragma once' or canonical guard '{guard}'"))


def check_include_order(rel, root, text, out):
    if not rel.endswith(".cc"):
        return
    code = strip_comments(text, keep_strings=True)
    includes = []  # (line number, kind, path)
    for number, line in iter_lines(code):
        match = INCLUDE_RE.match(line)
        if match:
            kind = "system" if match.group(1) == "<" else "project"
            includes.append((number, kind, match.group(2)))
    if not includes:
        return
    own_header = re.sub(r"\.cc$", ".h", rel)
    has_own = os.path.exists(os.path.join(root, own_header))
    rest = includes
    if has_own:
        if includes[0][1] != "project" or includes[0][2] != own_header:
            out.append(Violation(
                rel, includes[0][0], "include-order",
                f"first include must be the file's own header "
                f"\"{own_header}\" (proves it is self-contained)"))
            return
        rest = includes[1:]
    seen_project = None
    for number, kind, path in rest:
        if kind == "project":
            seen_project = (number, path)
        elif seen_project is not None:
            out.append(Violation(
                rel, number, "include-order",
                f"<{path}> after \"{seen_project[1]}\" — system includes "
                f"precede project includes"))
            return


def dcheck_argument(code, start):
    """Returns the balanced parenthesized argument starting at `start`
    (the index of the opening paren), or None if unbalanced."""
    depth = 0
    for i in range(start, len(code)):
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
            if depth == 0:
                return code[start + 1:i]
    return None


def check_dcheck_side_effects(rel, text, out):
    code = strip_comments(text)
    for match in DCHECK_RE.finditer(code):
        open_paren = code.index("(", match.start())
        arg = dcheck_argument(code, open_paren)
        if arg is None:
            continue
        mutation = DCHECK_MUTATION_RE.search(arg)
        if mutation:
            line = code.count("\n", 0, match.start()) + 1
            out.append(Violation(
                rel, line, "dcheck-side-effect",
                f"DFS_DCHECK argument contains "
                f"'{mutation.group(0).strip()}' — DCHECK compiles out "
                f"under NDEBUG, so side effects change Release behavior"))


def check_metric_names(rel, text, documented, protocol_text, out):
    code = strip_comments(text, keep_strings=True)
    for number, line in iter_lines(code):
        for match in METRIC_CALL_RE.finditer(line):
            name = match.group(2)
            if name.endswith("."):
                # Dynamic name built by concatenation ("strategy." + label
                # + ...): the registry documents it with a placeholder,
                # e.g. strategy.<label>.evaluations.
                if name + "<" in protocol_text:
                    continue
            elif name in documented:
                continue
            out.append(Violation(
                rel, number, "metric-name",
                f"instrument '{name}' is not documented in "
                f"docs/PROTOCOL.md (the metrics namespace is wire "
                f"contract, same policy as DFS_* env knobs)"))


def check_naked_exemptions(rel, text, out):
    if rel in NAKED_MUTEX_ALLOWLIST:
        return  # the macro's own definition/docs
    lines = text.splitlines()
    for index, line in enumerate(lines):
        if not EXEMPTION_RE.search(strip_comments(line)):
            continue
        here = "//" in line
        above = index > 0 and lines[index - 1].lstrip().startswith("//")
        if not here and not above:
            out.append(Violation(
                rel, index + 1, "naked-exemption",
                "DFS_NO_THREAD_SAFETY_ANALYSIS without a justification "
                "comment on this or the preceding line"))


def check_linalg_span(rel, text, out):
    if not rel.startswith("linalg/") or not rel.endswith(".h"):
        return
    code = strip_comments(text)
    for number, line in iter_lines(code):
        if LINALG_SPAN_RE.search(line):
            out.append(Violation(
                rel, number, "linalg-span",
                "const std::vector<double>& parameter in a linalg "
                "header — take std::span<const double> (or pointer + "
                "length) so hot-path callers never copy (DESIGN.md §2i)"))


def load_protocol(protocol_path):
    try:
        with open(protocol_path, encoding="utf-8") as handle:
            return handle.read()
    except OSError:
        return ""


def lint_tree(roots, protocol_path):
    protocol_text = load_protocol(protocol_path)
    documented = set(re.findall(r"[a-z][a-z0-9_.]*\.[a-z0-9_.]+",
                                protocol_text))
    violations = []
    for root in roots:
        for dirpath, _, filenames in os.walk(root):
            for filename in sorted(filenames):
                if not filename.endswith((".h", ".cc")):
                    continue
                path = os.path.join(dirpath, filename)
                rel = os.path.relpath(path, root).replace(os.sep, "/")
                with open(path, encoding="utf-8") as handle:
                    text = handle.read()
                check_banned_symbols(rel, text, violations)
                check_storage_qualifiers(rel, text, violations)
                check_naked_mutex(rel, text, violations)
                check_header_guard(rel, text, violations)
                check_include_order(rel, root, text, violations)
                check_dcheck_side_effects(rel, text, violations)
                check_metric_names(rel, text, documented,
                                   protocol_text, violations)
                check_naked_exemptions(rel, text, violations)
                check_linalg_span(rel, text, violations)
    return violations


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", action="append", default=None,
                        help="tree(s) to lint (default: src/ and tools/)")
    parser.add_argument("--protocol", default=None,
                        help="PROTOCOL.md for the metric-name rule "
                             "(default: docs/PROTOCOL.md)")
    args = parser.parse_args()

    roots = args.root or [os.path.join(REPO, "src"),
                          os.path.join(REPO, "tools")]
    protocol = args.protocol or os.path.join(REPO, "docs", "PROTOCOL.md")

    violations = lint_tree(roots, protocol)
    for violation in violations:
        print(f"dfs_lint: {violation}", file=sys.stderr)
    if violations:
        print(f"dfs_lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print("dfs_lint: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
