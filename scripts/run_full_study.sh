#!/usr/bin/env bash
# Runs the complete reproduction at a chosen scale.
#
#   scripts/run_full_study.sh            # default scaled-down study
#   DFS_SCENARIOS=200 DFS_TIME_SCALE=4 scripts/run_full_study.sh
#
# Larger DFS_SCENARIOS / DFS_TIME_SCALE move the study toward the paper's
# original 3318-scenario, hours-long-budget setting. Pools are cached in
# bench_results/ keyed by configuration, so re-runs are incremental.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

for b in build/bench/bench_*; do
  [ -x "$b" ] && [ -f "$b" ] && "$b"
done
