#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite.
#
#   scripts/check.sh               # the tier-1 gate from ROADMAP.md
#   scripts/check.sh --sanitize    # additionally run the concurrent tests
#                                  # (serve_test, util_test,
#                                  # engine_parallel_test, engine_golden_test)
#                                  # under TSan, and the zero-copy evaluation
#                                  # tests (engine_golden_test, linalg_test)
#                                  # under ASan+UBSan
#   scripts/check.sh --docs        # docs only (no build): every relative
#                                  # Markdown link resolves, every bench_*
#                                  # binary named in EXPERIMENTS.md exists,
#                                  # and every DFS_* env knob read by the
#                                  # code is documented in EXPERIMENTS.md
#   scripts/check.sh --bench-smoke # build bench_micro and snapshot the
#                                  # serial-vs-parallel candidate-sweep
#                                  # throughput to BENCH_results.json
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--docs" ]]; then
  python3 scripts/check_docs.py
  echo "check.sh: OK"
  exit 0
fi

if [[ "${1:-}" == "--bench-smoke" ]]; then
  # Dedicated Release tree: committed snapshots must never come from a
  # debug build of this library. (The build/ tree's type is whatever the
  # developer last configured; build-bench is pinned.)
  cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-bench -j --target bench_micro
  # Covers the hot-path kernels (GatherInto, span PredictBatch, one
  # uncached evaluation) and the Arg(1) serial baseline through Arg(0)
  # full-budget candidate sweep; DFS_THREADS caps the budget so the
  # snapshot is reproducible on wide machines.
  out="${2:-BENCH_results.json}"
  DFS_THREADS="${DFS_THREADS:-4}" ./build-bench/bench/bench_micro \
    --benchmark_filter='EngineEvaluateBatch|EvaluateUncached|GatherInto|PredictBatchSpan' \
    --benchmark_min_time=0.2 \
    --json "$out"
  # Note: the JSON's "library_build_type" describes the *system*
  # libbenchmark (Debian ships it non-NDEBUG, i.e. "debug" forever);
  # "dfs_build_type" is this library's own build and is the one gated.
  if ! grep -q '"dfs_build_type": "release"' "$out"; then
    echo "check.sh: FATAL: $out was produced by a non-Release build" >&2
    echo "check.sh: (context lacks '\"dfs_build_type\": \"release\"')" >&2
    exit 1
  fi
  echo "check.sh: wrote $out"
  echo "check.sh: OK"
  exit 0
fi

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

if [[ "${1:-}" == "--sanitize" ]]; then
  # ThreadSanitizer build of the concurrency-heavy binaries in a separate
  # build tree, so the regular build/ stays clean. engine_golden_test rides
  # along: its byte-identical comparisons must hold when evaluations share
  # the engine's scratch pool across threads.
  cmake -B build-tsan -S . -DDFS_SANITIZE=thread
  cmake --build build-tsan -j --target serve_test util_test \
    engine_parallel_test engine_golden_test
  ./build-tsan/tests/serve_test
  ./build-tsan/tests/util_test
  ./build-tsan/tests/engine_parallel_test
  ./build-tsan/tests/engine_golden_test
  # ASan+UBSan sweep of the zero-copy evaluation path: the span kernels,
  # unchecked Matrix accessors, and in-place gathers must be clean under
  # memory and UB checking (DFS_DCHECK bounds checks compile out in
  # Release; the sanitizers are the backstop).
  cmake -B build-asan -S . -DDFS_SANITIZE=address,undefined
  cmake --build build-asan -j --target engine_golden_test linalg_test
  ./build-asan/tests/engine_golden_test
  ./build-asan/tests/linalg_test
fi

echo "check.sh: OK"
