#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite.
#
#   scripts/check.sh               # the tier-1 gate from ROADMAP.md
#   scripts/check.sh --sanitize    # additionally run the concurrent tests
#                                  # (serve_test, util_test,
#                                  # engine_parallel_test) under TSan
#   scripts/check.sh --docs        # docs only (no build): every relative
#                                  # Markdown link resolves, every bench_*
#                                  # binary named in EXPERIMENTS.md exists,
#                                  # and every DFS_* env knob read by the
#                                  # code is documented in EXPERIMENTS.md
#   scripts/check.sh --bench-smoke # build bench_micro and snapshot the
#                                  # serial-vs-parallel candidate-sweep
#                                  # throughput to BENCH_results.json
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--docs" ]]; then
  python3 scripts/check_docs.py
  echo "check.sh: OK"
  exit 0
fi

if [[ "${1:-}" == "--bench-smoke" ]]; then
  cmake -B build -S .
  cmake --build build -j --target bench_micro
  # Covers Arg(1) (serial baseline) through Arg(0) (full budget); DFS_THREADS
  # caps the budget so the snapshot is reproducible on wide machines.
  DFS_THREADS="${DFS_THREADS:-4}" ./build/bench/bench_micro \
    --benchmark_filter=EngineEvaluateBatch \
    --benchmark_min_time=0.2 \
    --json BENCH_results.json
  echo "check.sh: wrote BENCH_results.json"
  echo "check.sh: OK"
  exit 0
fi

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

if [[ "${1:-}" == "--sanitize" ]]; then
  # ThreadSanitizer build of the concurrency-heavy binaries in a separate
  # build tree, so the regular build/ stays clean.
  cmake -B build-tsan -S . -DDFS_SANITIZE=thread
  cmake --build build-tsan -j --target serve_test util_test engine_parallel_test
  ./build-tsan/tests/serve_test
  ./build-tsan/tests/util_test
  ./build-tsan/tests/engine_parallel_test
fi

echo "check.sh: OK"
