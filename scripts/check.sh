#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite.
#
#   scripts/check.sh               # the tier-1 gate from ROADMAP.md
#   scripts/check.sh --sanitize    # additionally run the concurrent tests
#                                  # (serve_test, util_test, router_test,
#                                  # engine_parallel_test, eval_cache_test,
#                                  # engine_golden_test, kernels_test)
#                                  # under TSan, and the zero-copy
#                                  # evaluation tests (engine_golden_test,
#                                  # linalg_test, kernels_test)
#                                  # under ASan+UBSan
#   scripts/check.sh --docs        # docs only (no build): every relative
#                                  # Markdown link resolves, every bench_*
#                                  # binary named in EXPERIMENTS.md exists,
#                                  # every DFS_* env knob read by the
#                                  # code is documented in EXPERIMENTS.md,
#                                  # and every tools/ binary is mentioned
#                                  # in some Markdown file
#   scripts/check.sh --bench-smoke # build bench_micro and snapshot the
#                                  # serial-vs-parallel candidate-sweep
#                                  # throughput to BENCH_results.json,
#                                  # plus dfs_loadgen serve-load rows
#                                  # (epoll vs thread-per-connection,
#                                  # 1k-channel, and past-saturation shed)
#   scripts/check.sh --lint        # static gate (no test run): dfs_lint
#                                  # project-contract rules + their
#                                  # self-test, then — when Clang tooling
#                                  # is on PATH — a -DDFS_ANALYZE=ON
#                                  # thread-safety build and clang-tidy
#                                  # over src/ (skipped with a notice on
#                                  # GCC-only hosts)
#   scripts/check.sh --analyze     # static contract analyses (no test
#                                  # run): tools/dfs_analyze.py lock-order
#                                  # / hot-alloc / determinism passes over
#                                  # src/ + the committed docs/lock_order.dot
#                                  # drift check + the analyzer self-test;
#                                  # when the libclang Python bindings are
#                                  # importable, the clang front-end runs
#                                  # as a second leg (skipped with a
#                                  # notice otherwise)
#   scripts/check.sh --fuzz        # 60s libFuzzer smoke over the binary
#                                  # decoders (tests/fuzz/): Clang-only,
#                                  # skipped with a notice on GCC hosts
#                                  # (the fuzz.corpus_replay ctest entry
#                                  # still covers the corpus everywhere)
#   scripts/check.sh --all         # tier-1 + --sanitize + --docs + --lint
#                                  # + --analyze
set -euo pipefail
cd "$(dirname "$0")/.."

run_lint() {
  # Leg 1 (always): the project-contract linter and its self-test. Pure
  # Python, no toolchain dependency.
  python3 tools/dfs_lint.py
  python3 tests/lint/dfs_lint_test.py

  # Leg 2 (Clang only): promote the DFS_GUARDED_BY/DFS_REQUIRES
  # annotations to hard errors. The attributes are no-ops under GCC, so
  # on a host without clang++ this leg is skipped — loudly, never
  # silently passed off as run.
  if command -v clang++ >/dev/null 2>&1; then
    cmake -B build-analyze -S . -DCMAKE_CXX_COMPILER=clang++ \
      -DDFS_ANALYZE=ON
    cmake --build build-analyze -j
  else
    echo "check.sh: NOTICE: clang++ not found; skipping the" >&2
    echo "check.sh:   -DDFS_ANALYZE=ON thread-safety-analysis build" >&2
  fi

  # Leg 3 (Clang only): the curated .clang-tidy profile over src/. Uses
  # the compile database from a plain configure.
  if command -v clang-tidy >/dev/null 2>&1; then
    cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    find src -name '*.cc' -print0 | \
      xargs -0 clang-tidy -p build --quiet
  else
    echo "check.sh: NOTICE: clang-tidy not found; skipping the" >&2
    echo "check.sh:   .clang-tidy sweep" >&2
  fi
}

run_analyze() {
  # Leg 1 (always): the textual front-end — the canonical one; it
  # generated the committed artifact, so the drift check is exact. Runs
  # all three passes over src/ and the analyzer's own self-test.
  python3 tools/dfs_analyze.py --check-dot docs/lock_order.dot
  python3 tests/analyze/dfs_analyze_test.py

  # Leg 2 (libclang only): the AST front-end cross-checks the textual
  # extraction. The Python bindings rarely exist on GCC-only hosts —
  # skipped loudly, never silently passed off as run.
  if python3 -c "import clang.cindex" >/dev/null 2>&1; then
    python3 tools/dfs_analyze.py --frontend clang \
      --check-dot docs/lock_order.dot
  else
    echo "check.sh: NOTICE: python3 clang bindings not importable;" >&2
    echo "check.sh:   skipping the dfs_analyze clang front-end leg" >&2
  fi
}

run_fuzz_smoke() {
  # libFuzzer needs Clang; on a GCC-only host the corpus-replay ctest
  # entry (always built, every tree) is the standing coverage and this
  # smoke is skipped — loudly.
  if ! command -v clang++ >/dev/null 2>&1; then
    echo "check.sh: NOTICE: clang++ not found; skipping the libFuzzer" >&2
    echo "check.sh:   smoke (fuzz.corpus_replay still covers the corpus)" >&2
    return 0
  fi
  cmake -B build-fuzz -S . -DCMAKE_CXX_COMPILER=clang++ -DDFS_FUZZ=ON
  cmake --build build-fuzz -j --target \
    fuzz_line_protocol fuzz_spill_decoder fuzz_arff
  corpus="$(mktemp -d)"
  trap 'rm -rf "$corpus"' RETURN
  python3 tests/fuzz/make_corpus.py "$corpus"
  # ~60s total: 20s per target, seeded from the committed generator so
  # the fuzzers start past the header checks.
  for target in line_protocol spill_decoder arff; do
    "./build-fuzz/tests/fuzz/fuzz_${target}" \
      -max_total_time=20 -print_final_stats=1 "$corpus/${target}"
  done
}

if [[ "${1:-}" == "--docs" ]]; then
  python3 scripts/check_docs.py
  echo "check.sh: OK"
  exit 0
fi

if [[ "${1:-}" == "--lint" ]]; then
  run_lint
  echo "check.sh: OK"
  exit 0
fi

if [[ "${1:-}" == "--analyze" ]]; then
  run_analyze
  echo "check.sh: OK"
  exit 0
fi

if [[ "${1:-}" == "--fuzz" ]]; then
  run_fuzz_smoke
  echo "check.sh: OK"
  exit 0
fi

if [[ "${1:-}" == "--bench-smoke" ]]; then
  # Dedicated Release tree: committed snapshots must never come from a
  # debug build of this library. (The build/ tree's type is whatever the
  # developer last configured; build-bench is pinned.)
  cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-bench -j --target bench_micro bench_serve_throughput \
    dfs_loadgen
  # Covers the hot-path kernels (GatherInto, span PredictBatch, one
  # uncached evaluation), the Arg(1) serial baseline through Arg(0)
  # full-budget candidate sweep, the eval-cache miss probe with the
  # membership filter off/on (the filter-on row must be cheaper), and the
  # warm-restart spill decode; DFS_THREADS caps the budget so the
  # snapshot is reproducible on wide machines.
  out="${2:-BENCH_results.json}"
  DFS_THREADS="${DFS_THREADS:-4}" ./build-bench/bench/bench_micro \
    --benchmark_filter='EngineEvaluateBatch|EvaluateUncached|GatherInto|PredictBatchSpan|EvalCache|MatVec|SquaredDistanceSpan' \
    --benchmark_min_time=0.2 \
    --json "$out"
  # Router cost on the serve submit path: router-off explicit jobs vs
  # router-on "auto" jobs (static, and with the online learning loop).
  # Folded into the same snapshot so bench_diff.py sees all rows.
  DFS_THREADS="${DFS_THREADS:-4}" ./build-bench/bench/bench_serve_throughput \
    --benchmark_filter='ServeRoutedThroughput' \
    --benchmark_min_time=0.2 \
    --json "$out.routed"
  # Serve front-end under open-loop load (tools/dfs_loadgen, real TCP):
  #   * epoll vs the thread-per-connection baseline at moderate load —
  #     bench_diff.py gates the front-end p50/p95/p99 rows against the
  #     committed snapshot (ISSUE 9's "p99 no worse than baseline").
  #   * 1k+ concurrent channels sustained through the event loop.
  #   * submit workload pushed past saturation with the admission
  #     watermark on: throughput plateaus and sheds rise (the shed/error
  #     counts ride in the row labels; only latencies/ns_per_op are
  #     gateable rows).
  ./build-bench/tools/dfs_loadgen --workload ping --mode open \
    --connections 64 --rate 500 --requests 1500 --json "$out.lg_epoll"
  ./build-bench/tools/dfs_loadgen --frontend threads --workload ping \
    --mode open --connections 64 --rate 500 --requests 1500 \
    --json "$out.lg_threads"
  ./build-bench/tools/dfs_loadgen --workload ping --mode open \
    --connections 1024 --rate 2000 --requests 10000 \
    --json "$out.lg_1k"
  ./build-bench/tools/dfs_loadgen --workload submit --mode open \
    --connections 64 --rate 4000 --requests 8000 --workers 1 \
    --queue-capacity 16 --shed-watermark 16 --json "$out.lg_shed"
  python3 - "$out" "$out.routed" "$out.lg_epoll" "$out.lg_threads" \
    "$out.lg_1k" "$out.lg_shed" <<'PY'
import json, sys
main_path, extra_paths = sys.argv[1], sys.argv[2:]
with open(main_path, encoding="utf-8") as fh:
    report = json.load(fh)
for extra_path in extra_paths:
    with open(extra_path, encoding="utf-8") as fh:
        extra = json.load(fh)
    report["benchmarks"].extend(extra.get("benchmarks", []))
with open(main_path, "w", encoding="utf-8") as fh:
    json.dump(report, fh, indent=2)
    fh.write("\n")
PY
  rm -f "$out.routed" "$out.lg_epoll" "$out.lg_threads" "$out.lg_1k" \
    "$out.lg_shed"
  # Note: the JSON's "library_build_type" describes the *system*
  # libbenchmark (Debian ships it non-NDEBUG, i.e. "debug" forever);
  # "dfs_build_type" is this library's own build and is the one gated.
  if ! grep -q '"dfs_build_type": "release"' "$out"; then
    echo "check.sh: FATAL: $out was produced by a non-Release build" >&2
    echo "check.sh: (context lacks '\"dfs_build_type\": \"release\"')" >&2
    exit 1
  fi
  echo "check.sh: wrote $out"
  echo "check.sh: OK"
  exit 0
fi

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

if [[ "${1:-}" == "--sanitize" || "${1:-}" == "--all" ]]; then
  # ThreadSanitizer build of the concurrency-heavy binaries in a separate
  # build tree, so the regular build/ stays clean. engine_golden_test rides
  # along: its byte-identical comparisons must hold when evaluations share
  # the engine's scratch pool across threads.
  cmake -B build-tsan -S . -DDFS_SANITIZE=thread
  cmake --build build-tsan -j --target serve_test util_test router_test \
    engine_parallel_test eval_cache_test engine_golden_test kernels_test
  ./build-tsan/tests/serve_test
  ./build-tsan/tests/util_test
  ./build-tsan/tests/router_test
  ./build-tsan/tests/engine_parallel_test
  ./build-tsan/tests/eval_cache_test
  ./build-tsan/tests/engine_golden_test
  ./build-tsan/tests/kernels_test
  # ASan+UBSan sweep of the zero-copy evaluation path: the span kernels,
  # unchecked Matrix accessors, and in-place gathers must be clean under
  # memory and UB checking (DFS_DCHECK bounds checks compile out in
  # Release; the sanitizers are the backstop).
  cmake -B build-asan -S . -DDFS_SANITIZE=address,undefined
  cmake --build build-asan -j --target engine_golden_test linalg_test \
    kernels_test fuzz_line_protocol_replay fuzz_spill_decoder_replay \
    fuzz_arff_replay
  ./build-asan/tests/engine_golden_test
  ./build-asan/tests/linalg_test
  ./build-asan/tests/kernels_test
  # Replay the generated fuzz corpus — including every historical crash
  # seed — through the decoders under ASan+UBSan (tests/fuzz/).
  python3 tests/fuzz/corpus_replay_test.py \
    ./build-asan/tests/fuzz/fuzz_line_protocol_replay \
    ./build-asan/tests/fuzz/fuzz_spill_decoder_replay \
    ./build-asan/tests/fuzz/fuzz_arff_replay
fi

if [[ "${1:-}" == "--all" ]]; then
  python3 scripts/check_docs.py
  run_lint
  run_analyze
fi

echo "check.sh: OK"
