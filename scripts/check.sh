#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite.
#
#   scripts/check.sh              # the tier-1 gate from ROADMAP.md
#   scripts/check.sh --sanitize   # additionally run the concurrent tests
#                                 # (serve_test, util_test) under TSan
#   scripts/check.sh --docs       # docs only (no build): every relative
#                                 # Markdown link resolves, and every
#                                 # bench_* binary named in EXPERIMENTS.md
#                                 # exists in bench/CMakeLists.txt
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--docs" ]]; then
  python3 scripts/check_docs.py
  echo "check.sh: OK"
  exit 0
fi

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

if [[ "${1:-}" == "--sanitize" ]]; then
  # ThreadSanitizer build of the concurrency-heavy binaries in a separate
  # build tree, so the regular build/ stays clean.
  cmake -B build-tsan -S . -DDFS_SANITIZE=thread
  cmake --build build-tsan -j --target serve_test util_test
  ./build-tsan/tests/serve_test
  ./build-tsan/tests/util_test
fi

echo "check.sh: OK"
