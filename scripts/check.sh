#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite.
#
#   scripts/check.sh              # the tier-1 gate from ROADMAP.md
#   scripts/check.sh --sanitize   # additionally run the concurrent tests
#                                 # (serve_test, util_test) under TSan
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

if [[ "${1:-}" == "--sanitize" ]]; then
  # ThreadSanitizer build of the concurrency-heavy binaries in a separate
  # build tree, so the regular build/ stays clean.
  cmake -B build-tsan -S . -DDFS_SANITIZE=thread
  cmake --build build-tsan -j --target serve_test util_test
  ./build-tsan/tests/serve_test
  ./build-tsan/tests/util_test
fi

echo "check.sh: OK"
