#!/usr/bin/env python3
"""Compare two google-benchmark JSON snapshots benchmark by benchmark.

    scripts/bench_diff.py BASELINE.json CURRENT.json [--threshold PCT]

Prints one line per benchmark present in both files with the real_time
delta (negative = faster), plus benchmarks that appear on only one side.
With --threshold, exits 1 if any shared benchmark regressed (got slower)
by more than PCT percent — the form CI wants:

    scripts/bench_diff.py BENCH_results.pre_span.json BENCH_results.json \
        --threshold 10

Both snapshots should come from `scripts/check.sh --bench-smoke` (Release
builds, fixed DFS_THREADS); comparing a debug snapshot to a release one
measures the compiler, not the change.
"""

import argparse
import json
import sys


def load_benchmarks(path):
    """Returns {name: (real_time, time_unit)} for one snapshot."""
    with open(path, encoding="utf-8") as handle:
        report = json.load(handle)
    benchmarks = {}
    for entry in report.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions); the raw
        # iterations row carries run_type "iteration" (or no run_type in
        # older library versions).
        if entry.get("run_type", "iteration") != "iteration":
            continue
        benchmarks[entry["name"]] = (
            float(entry["real_time"]),
            entry.get("time_unit", "ns"),
        )
    return benchmarks


def main():
    parser = argparse.ArgumentParser(
        description="Per-benchmark real_time delta between two snapshots")
    parser.add_argument("baseline", help="baseline snapshot (JSON)")
    parser.add_argument("current", help="current snapshot (JSON)")
    parser.add_argument(
        "--threshold", type=float, default=None, metavar="PCT",
        help="exit 1 if any benchmark is more than PCT%% slower "
             "than the baseline")
    args = parser.parse_args()

    baseline = load_benchmarks(args.baseline)
    current = load_benchmarks(args.current)
    shared = sorted(set(baseline) & set(current))
    if not shared:
        print("bench_diff: no benchmarks in common", file=sys.stderr)
        return 1

    width = max(len(name) for name in shared)
    regressions = []
    for name in shared:
        base_time, base_unit = baseline[name]
        cur_time, cur_unit = current[name]
        if base_unit != cur_unit:
            print(f"bench_diff: {name}: unit mismatch "
                  f"({base_unit} vs {cur_unit})", file=sys.stderr)
            return 1
        delta_pct = (cur_time - base_time) / base_time * 100.0
        speedup = base_time / cur_time if cur_time > 0 else float("inf")
        print(f"{name:<{width}}  {base_time:>12.1f} -> {cur_time:>12.1f} "
              f"{cur_unit}  {delta_pct:+7.1f}%  ({speedup:.2f}x)")
        if args.threshold is not None and delta_pct > args.threshold:
            regressions.append((name, delta_pct))

    for name in sorted(set(baseline) - set(current)):
        print(f"{name:<{width}}  only in baseline")
    for name in sorted(set(current) - set(baseline)):
        print(f"{name:<{width}}  only in current")

    if regressions:
        for name, delta_pct in regressions:
            print(f"bench_diff: REGRESSION {name}: {delta_pct:+.1f}% "
                  f"(threshold {args.threshold:+.1f}%)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
