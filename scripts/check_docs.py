#!/usr/bin/env python3
"""Documentation consistency checks (scripts/check.sh --docs).

1. Every relative Markdown link in the top-level *.md files and docs/
   resolves to a file or directory in the repository.
2. Every `bench_*` binary named in EXPERIMENTS.md is declared in
   bench/CMakeLists.txt (no stale instructions for removed binaries),
   and every declared binary is named in EXPERIMENTS.md (no
   undocumented benchmarks).
3. Every `DFS_*` environment variable the code reads (any
   `getenv("DFS_...")` under src/ or bench/) is documented in
   EXPERIMENTS.md — env knobs must not be discoverable only by reading
   the source.
4. Every tool binary declared in tools/CMakeLists.txt (`dfs_*`) is
   mentioned in at least one top-level or docs/ Markdown file — a tool
   nobody can find from the docs is a tool nobody runs.
"""

import glob
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# [text](target) — stop at the first ')' so "(see [a](b))" parses; skip
# images the same way (the leading '!' does not change resolution rules).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def markdown_files():
    files = sorted(glob.glob(os.path.join(REPO, "*.md")))
    files += sorted(glob.glob(os.path.join(REPO, "docs", "**", "*.md"),
                              recursive=True))
    return files


def strip_code_blocks(text):
    """Removes fenced code blocks: link syntax inside them is example
    text, not navigation."""
    return re.sub(r"```.*?```", "", text, flags=re.DOTALL)


def check_links():
    errors = []
    for path in markdown_files():
        with open(path, encoding="utf-8") as handle:
            text = strip_code_blocks(handle.read())
        base = os.path.dirname(path)
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            target = target.split("#", 1)[0]  # drop in-page anchors
            if not target:
                continue
            resolved = os.path.normpath(os.path.join(base, target))
            if not os.path.exists(resolved):
                errors.append(
                    f"{os.path.relpath(path, REPO)}: broken link "
                    f"'{match.group(1)}' -> {os.path.relpath(resolved, REPO)}"
                )
    return errors


def check_bench_binaries():
    # Binary names only — "bench_results" (the cache dir), "bench_common"
    # (the shared library), and "bench_diff" (the comparison script in
    # scripts/) are not benchmark binaries.
    with open(os.path.join(REPO, "EXPERIMENTS.md"), encoding="utf-8") as f:
        named = set(re.findall(r"\b(bench_[a-z0-9_]+)\b", f.read()))
    named -= {"bench_results", "bench_common", "bench_diff"}
    with open(os.path.join(REPO, "bench", "CMakeLists.txt"),
              encoding="utf-8") as f:
        declared = set(re.findall(r"\b(bench_[a-z0-9_]+)\b", f.read()))
    declared.discard("bench_common")  # the shared library, not a binary
    errors = [
        f"EXPERIMENTS.md names '{name}' but bench/CMakeLists.txt does not "
        f"declare it" for name in sorted(named - declared)
    ]
    # The reverse direction: a benchmark binary nobody can find from the
    # docs is a benchmark nobody runs.
    errors += [
        f"bench/CMakeLists.txt declares '{name}' but EXPERIMENTS.md does "
        f"not mention it" for name in sorted(declared - named)
    ]
    return errors


def check_env_knobs():
    getenv_re = re.compile(r"getenv\(\s*\"(DFS_[A-Z0-9_]+)\"")
    read = {}
    for root in ("src", "bench"):
        pattern = os.path.join(REPO, root, "**", "*.cc")
        for path in sorted(glob.glob(pattern, recursive=True)):
            with open(path, encoding="utf-8") as handle:
                for name in getenv_re.findall(handle.read()):
                    read.setdefault(name, os.path.relpath(path, REPO))
    with open(os.path.join(REPO, "EXPERIMENTS.md"), encoding="utf-8") as f:
        documented = set(re.findall(r"\b(DFS_[A-Z0-9_]+)\b", f.read()))
    return [
        f"{path} reads '{name}' but EXPERIMENTS.md does not document it"
        for name, path in sorted(read.items()) if name not in documented
    ]


def check_tool_binaries():
    with open(os.path.join(REPO, "tools", "CMakeLists.txt"),
              encoding="utf-8") as f:
        declared = set(
            re.findall(r"add_executable\(\s*(dfs_[a-z0-9_]+)", f.read()))
    documented = set()
    for path in markdown_files():
        with open(path, encoding="utf-8") as handle:
            # Unlike links, code blocks count here: usage examples are
            # exactly how tools are documented.
            documented |= set(re.findall(r"\b(dfs_[a-z0-9_]+)\b",
                                         handle.read()))
    return [
        f"tools/CMakeLists.txt declares '{name}' but no Markdown file "
        f"mentions it" for name in sorted(declared - documented)
    ]


def main():
    errors = (check_links() + check_bench_binaries() + check_env_knobs() +
              check_tool_binaries())
    for error in errors:
        print(f"check_docs: {error}", file=sys.stderr)
    if errors:
        print(f"check_docs: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    print(f"check_docs: {len(markdown_files())} Markdown files OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
