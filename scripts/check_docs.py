#!/usr/bin/env python3
"""Documentation consistency checks (scripts/check.sh --docs).

1. Every relative Markdown link in the top-level *.md files and docs/
   resolves to a file or directory in the repository.
2. Every `bench_*` binary named in EXPERIMENTS.md is declared in
   bench/CMakeLists.txt (no stale instructions for removed binaries),
   and every declared binary is named in EXPERIMENTS.md (no
   undocumented benchmarks).
3. Every `DFS_*` environment variable the code reads (any
   `getenv("DFS_...")` under src/ or bench/) is documented in
   EXPERIMENTS.md — env knobs must not be discoverable only by reading
   the source.
4. Every tool binary declared in tools/CMakeLists.txt (`dfs_*`) is
   mentioned in at least one top-level or docs/ Markdown file — a tool
   nobody can find from the docs is a tool nobody runs.
5. Every `cache.*` instrument the code registers (counter/gauge/histogram
   under src/) appears in docs/PROTOCOL.md's instrument registry — the
   cache surface is documented by name, not by archaeology.
6. The on-disk format version documented in docs/CACHE.md matches
   `kEvalCacheFormatVersion` in src/core/eval_cache.h, so the byte-level
   spec can never drift silently from the decoder.
7. The committed lock-order artifact (docs/lock_order.dot) is linked
   from at least one Markdown file, and every acquisition site its edge
   labels cite (`label="<file>:<line>"`) points at a file that still
   exists under src/. Exact line-level sync is `check.sh --analyze`'s
   job (it re-derives the graph); this keeps the artifact findable and
   its citations non-dangling even on docs-only runs.
"""

import glob
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# [text](target) — stop at the first ')' so "(see [a](b))" parses; skip
# images the same way (the leading '!' does not change resolution rules).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def markdown_files():
    files = sorted(glob.glob(os.path.join(REPO, "*.md")))
    files += sorted(glob.glob(os.path.join(REPO, "docs", "**", "*.md"),
                              recursive=True))
    return files


def strip_code_blocks(text):
    """Removes fenced code blocks: link syntax inside them is example
    text, not navigation."""
    return re.sub(r"```.*?```", "", text, flags=re.DOTALL)


def check_links():
    errors = []
    for path in markdown_files():
        with open(path, encoding="utf-8") as handle:
            text = strip_code_blocks(handle.read())
        base = os.path.dirname(path)
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            target = target.split("#", 1)[0]  # drop in-page anchors
            if not target:
                continue
            resolved = os.path.normpath(os.path.join(base, target))
            if not os.path.exists(resolved):
                errors.append(
                    f"{os.path.relpath(path, REPO)}: broken link "
                    f"'{match.group(1)}' -> {os.path.relpath(resolved, REPO)}"
                )
    return errors


def check_bench_binaries():
    # Binary names only — "bench_results" (the cache dir), "bench_common"
    # (the shared library), and "bench_diff" (the comparison script in
    # scripts/) are not benchmark binaries.
    with open(os.path.join(REPO, "EXPERIMENTS.md"), encoding="utf-8") as f:
        named = set(re.findall(r"\b(bench_[a-z0-9_]+)\b", f.read()))
    named -= {"bench_results", "bench_common", "bench_diff"}
    with open(os.path.join(REPO, "bench", "CMakeLists.txt"),
              encoding="utf-8") as f:
        declared = set(re.findall(r"\b(bench_[a-z0-9_]+)\b", f.read()))
    declared.discard("bench_common")  # the shared library, not a binary
    errors = [
        f"EXPERIMENTS.md names '{name}' but bench/CMakeLists.txt does not "
        f"declare it" for name in sorted(named - declared)
    ]
    # The reverse direction: a benchmark binary nobody can find from the
    # docs is a benchmark nobody runs.
    errors += [
        f"bench/CMakeLists.txt declares '{name}' but EXPERIMENTS.md does "
        f"not mention it" for name in sorted(declared - named)
    ]
    return errors


def check_env_knobs():
    getenv_re = re.compile(r"getenv\(\s*\"(DFS_[A-Z0-9_]+)\"")
    read = {}
    for root in ("src", "bench"):
        pattern = os.path.join(REPO, root, "**", "*.cc")
        for path in sorted(glob.glob(pattern, recursive=True)):
            with open(path, encoding="utf-8") as handle:
                for name in getenv_re.findall(handle.read()):
                    read.setdefault(name, os.path.relpath(path, REPO))
    with open(os.path.join(REPO, "EXPERIMENTS.md"), encoding="utf-8") as f:
        documented = set(re.findall(r"\b(DFS_[A-Z0-9_]+)\b", f.read()))
    return [
        f"{path} reads '{name}' but EXPERIMENTS.md does not document it"
        for name, path in sorted(read.items()) if name not in documented
    ]


def check_tool_binaries():
    with open(os.path.join(REPO, "tools", "CMakeLists.txt"),
              encoding="utf-8") as f:
        declared = set(
            re.findall(r"add_executable\(\s*(dfs_[a-z0-9_]+)", f.read()))
    documented = set()
    for path in markdown_files():
        with open(path, encoding="utf-8") as handle:
            # Unlike links, code blocks count here: usage examples are
            # exactly how tools are documented.
            documented |= set(re.findall(r"\b(dfs_[a-z0-9_]+)\b",
                                         handle.read()))
    return [
        f"tools/CMakeLists.txt declares '{name}' but no Markdown file "
        f"mentions it" for name in sorted(declared - documented)
    ]


def check_cache_instruments():
    instrument_re = re.compile(
        r"\b(?:counter|gauge|histogram)\(\s*\"(cache\.[a-z0-9_.]+)\"")
    registered = {}
    pattern = os.path.join(REPO, "src", "**", "*.cc")
    for path in sorted(glob.glob(pattern, recursive=True)):
        with open(path, encoding="utf-8") as handle:
            for name in instrument_re.findall(handle.read()):
                registered.setdefault(name, os.path.relpath(path, REPO))
    with open(os.path.join(REPO, "docs", "PROTOCOL.md"),
              encoding="utf-8") as f:
        documented = set(re.findall(r"\b(cache\.[a-z0-9_.]+)\b", f.read()))
    return [
        f"{path} registers instrument '{name}' but docs/PROTOCOL.md does "
        f"not list it" for name, path in sorted(registered.items())
        if name not in documented
    ]


def check_cache_format_version():
    with open(os.path.join(REPO, "src", "core", "eval_cache.h"),
              encoding="utf-8") as f:
        code = re.search(r"kEvalCacheFormatVersion\s*=\s*(\d+)", f.read())
    if code is None:
        return ["src/core/eval_cache.h no longer defines "
                "kEvalCacheFormatVersion (update check_docs.py)"]
    with open(os.path.join(REPO, "docs", "CACHE.md"), encoding="utf-8") as f:
        doc = re.search(r"\*\*Format version:\*\*\s*`?(\d+)`?", f.read())
    if doc is None:
        return ["docs/CACHE.md is missing its '**Format version:** `N`' "
                "line"]
    if code.group(1) != doc.group(1):
        return [
            f"docs/CACHE.md documents format version {doc.group(1)} but "
            f"src/core/eval_cache.h defines kEvalCacheFormatVersion = "
            f"{code.group(1)}"
        ]
    return []


def check_lock_order_artifact():
    dot_path = os.path.join(REPO, "docs", "lock_order.dot")
    if not os.path.exists(dot_path):
        return ["docs/lock_order.dot is missing; regenerate it with "
                "`python3 tools/dfs_analyze.py --write-dot "
                "docs/lock_order.dot`"]
    referenced = any(
        "lock_order.dot" in open(path, encoding="utf-8").read()
        for path in markdown_files())
    errors = []
    if not referenced:
        errors.append("no Markdown file references docs/lock_order.dot — "
                      "the lock-order artifact is unfindable from the docs")
    with open(dot_path, encoding="utf-8") as handle:
        labels = re.findall(r'label="([^":]+):\d+"', handle.read())
    for cited in sorted(set(labels)):
        if not os.path.exists(os.path.join(REPO, "src", cited)):
            errors.append(
                f"docs/lock_order.dot cites acquisition site '{cited}' but "
                f"src/{cited} does not exist (stale artifact; regenerate "
                f"with --write-dot)")
    return errors


def main():
    errors = (check_links() + check_bench_binaries() + check_env_knobs() +
              check_tool_binaries() + check_cache_instruments() +
              check_cache_format_version() + check_lock_order_artifact())
    for error in errors:
        print(f"check_docs: {error}", file=sys.stderr)
    if errors:
        print(f"check_docs: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    print(f"check_docs: {len(markdown_files())} Markdown files OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
